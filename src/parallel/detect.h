// Sharded parallel front-ends for the two detection pipelines.
//
// Both detectors keep all per-attack state keyed by the victim address
// (telescope flows by victim, AmpPot sessions and fleet merge groups by
// (victim, protocol)), so the packet/request stream can be split by
// victim-hash across N workers, each running an unmodified sequential
// detector over its shard, and the per-shard event runs recombined with a
// deterministic k-way merge.
//
// The determinism invariant (tested in parallel_test, enforced in CI):
// for any thread and shard count, the merged output is byte-identical to
// the sequential detector's output in canonical order. Two details make
// this exact rather than approximate:
//
//  * Telescope flow expiry is driven by a lazy sweep whose cadence depends
//    on the timestamps of *all* packets (FlowTable sweeps at most once per
//    60 s of stream time). Each worker therefore scans the entire packet
//    stream, feeding `add` for its own shard's backscatter and `advance`
//    for everything else, so every shard's sweep schedule — and hence flow
//    splitting — matches the sequential table exactly. The scan is cheap
//    (backscatter test + one hash); the per-flow state updates, which
//    dominate, are what gets divided N ways.
//
//  * Events are merged on the totally-ordered key (start, victim
//    [, protocol]); victims are unique to a shard, so no cross-shard ties
//    exist and the merge order is a pure function of the event set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amppot/consolidator.h"
#include "amppot/fleet.h"
#include "net/headers.h"
#include "telescope/flow_table.h"

namespace dosm::parallel {

/// Execution knobs shared by the parallel detectors. The output is
/// byte-identical for every (threads, shards) combination; the knobs only
/// trade memory and load balance against speed.
struct ParallelConfig {
  /// Worker threads; <= 1 runs every shard inline on the caller.
  int threads = 1;
  /// Victim-hash shards (work-queue tasks); 0 means one per thread.
  /// More shards than threads improves load balance on skewed victim
  /// distributions at the cost of extra stream scans.
  int shards = 0;

  /// Shard count actually used: max(shards, 1), defaulted to threads.
  std::size_t effective_shards() const {
    const int s = shards > 0 ? shards : threads;
    return static_cast<std::size_t>(s > 1 ? s : 1);
  }
};

/// Canonical total order on telescope events: (start, victim). A victim has
/// at most one open flow at a time, so the key is unique across a capture.
bool telescope_event_less(const telescope::TelescopeEvent& a,
                          const telescope::TelescopeEvent& b);

/// Canonical total order on AmpPot events: (start, victim, protocol) — the
/// order consolidate_log and merge_fleet_events already emit.
bool amppot_event_less(const amppot::AmpPotEvent& a,
                       const amppot::AmpPotEvent& b);

/// Sorts sequential detector output into the canonical order the parallel
/// path emits, for byte-for-byte comparison.
void canonical_sort(std::vector<telescope::TelescopeEvent>& events);
void canonical_sort(std::vector<amppot::AmpPotEvent>& events);

/// Aggregated counters matching BackscatterDetector's accessors.
struct TelescopeDetectStats {
  std::uint64_t packets_seen = 0;
  std::uint64_t backscatter_packets = 0;
  std::uint64_t flows_filtered = 0;
  std::uint64_t events_emitted = 0;
};

/// Sharded, work-queue-driven equivalent of BackscatterDetector over an
/// in-memory capture (time-ordered, as FlowTable requires). Stateless
/// between calls: each detect() processes one complete capture.
class ParallelBackscatterDetector {
 public:
  explicit ParallelBackscatterDetector(
      ParallelConfig parallel = {},
      telescope::ClassifierThresholds thresholds = {},
      double flow_timeout_s = 300.0);

  /// Detects attack events in `packets`; returns them in canonical
  /// (start, victim) order, byte-identical to the sequential detector for
  /// any thread/shard count.
  std::vector<telescope::TelescopeEvent> detect(
      std::span<const net::PacketRecord> packets);

  /// Counters for the most recent detect() call.
  const TelescopeDetectStats& stats() const { return stats_; }

 private:
  ParallelConfig parallel_;
  telescope::ClassifierThresholds thresholds_;
  double flow_timeout_s_;
  TelescopeDetectStats stats_;
};

/// One honeypot's time-ordered request log plus the honeypot's identity
/// (carried through to events for distinct-honeypot accounting).
struct HoneypotLog {
  std::int32_t honeypot_id = -1;
  std::span<const amppot::RequestRecord> requests;
};

/// Sharded equivalent of per-honeypot consolidate_log + fleet-level
/// merge_fleet_events over a whole fleet's logs. Returns fleet-level events
/// in canonical (start, victim, protocol) order, byte-identical to the
/// sequential two-stage path for any thread/shard count.
std::vector<amppot::AmpPotEvent> parallel_consolidate(
    std::span<const HoneypotLog> logs,
    const amppot::ConsolidatorConfig& config = {},
    const ParallelConfig& parallel = {});

/// Drop-in parallel HoneypotFleet::harvest: consolidates every honeypot's
/// log with parallel_consolidate and clears the logs.
std::vector<amppot::AmpPotEvent> parallel_harvest(
    amppot::HoneypotFleet& fleet,
    const amppot::ConsolidatorConfig& config = {},
    const ParallelConfig& parallel = {});

}  // namespace dosm::parallel
