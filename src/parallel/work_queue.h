// Work-queue execution primitive for the sharded detection pipeline.
//
// The parallel layer decomposes detection into independent shard tasks and
// drains them through a shared atomic work queue: up to `threads` workers
// repeatedly claim the next unclaimed task index until none remain. Task
// side effects land in per-task slots chosen by the *task index*, never by
// worker identity or completion order, so results are deterministic no
// matter how the OS schedules the workers.
#pragma once

#include <cstddef>
#include <functional>

namespace dosm::parallel {

/// Runs `task(0) .. task(num_tasks - 1)` across up to `threads` worker
/// threads pulling indices from a shared queue. With `threads <= 1` (or a
/// single task) everything runs inline on the caller, in index order —
/// the degenerate case used for the `--threads 1` reference path.
///
/// When no task throws, every task is executed exactly once. If a task
/// throws, the first captured exception is rethrown on the caller after all
/// workers have joined; tasks not yet claimed at that point are skipped.
void run_tasks(std::size_t num_tasks, int threads,
               const std::function<void(std::size_t)>& task);

}  // namespace dosm::parallel
