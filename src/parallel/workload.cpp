#include "parallel/workload.h"

#include <algorithm>

#include "common/rng.h"

namespace dosm::parallel {

DetectWorkload make_workload(const WorkloadConfig& config) {
  Rng rng(config.seed);
  Rng direct_rng = rng.fork("direct");
  Rng reflection_rng = rng.fork("reflection");

  std::vector<telescope::SpoofedAttackSpec> direct;
  direct.reserve(static_cast<std::size_t>(std::max(config.direct_attacks, 0)));
  for (int i = 0; i < config.direct_attacks; ++i) {
    telescope::SpoofedAttackSpec spec;
    spec.victim = net::Ipv4Addr(
        static_cast<std::uint32_t>(direct_rng.next_u64()));
    spec.start = direct_rng.uniform(0.0, config.window_s);
    // Durations straddle the 60 s threshold; clip so flows close in-window.
    spec.duration_s = std::min(direct_rng.lognormal(4.6, 1.1),
                               config.window_s - spec.start);
    // Backscatter pps at the telescope is victim_pps / 256; median ~1.5 pps
    // observed, so roughly half the flows clear the 0.5 pps / 25 pkt bar.
    spec.victim_pps = 256.0 * direct_rng.lognormal(0.4, 1.2);
    spec.response_rate = direct_rng.uniform(0.6, 1.0);
    const double proto_pick = direct_rng.uniform();
    if (proto_pick < 0.78) {
      spec.ip_proto = 6;  // TCP
      spec.ports = {direct_rng.bernoulli(0.7)
                        ? std::uint16_t{80}
                        : static_cast<std::uint16_t>(
                              direct_rng.uniform_int(1, 65535))};
      if (direct_rng.bernoulli(0.2))
        spec.ports.push_back(static_cast<std::uint16_t>(
            direct_rng.uniform_int(1, 65535)));
    } else if (proto_pick < 0.92) {
      spec.ip_proto = 17;  // UDP
      spec.ports = {static_cast<std::uint16_t>(
          direct_rng.uniform_int(1, 65535))};
    } else {
      spec.ip_proto = 1;  // ICMP
      spec.ports.clear();
    }
    direct.push_back(std::move(spec));
  }

  std::vector<amppot::ReflectionAttackSpec> reflection;
  reflection.reserve(
      static_cast<std::size_t>(std::max(config.reflection_attacks, 0)));
  const auto protocols = amppot::all_protocols();
  for (int i = 0; i < config.reflection_attacks; ++i) {
    amppot::ReflectionAttackSpec spec;
    spec.victim = net::Ipv4Addr(
        static_cast<std::uint32_t>(reflection_rng.next_u64()));
    spec.protocol =
        protocols[reflection_rng.next_below(protocols.size())].protocol;
    spec.start = reflection_rng.uniform(0.0, config.window_s);
    spec.duration_s = std::min(reflection_rng.lognormal(5.5, 1.0),
                               config.window_s - spec.start);
    // Median 77 rps per reflector (Figure 4); sessions straddle the
    // 100-request consolidation threshold via the short-duration tail.
    spec.per_reflector_rps = reflection_rng.lognormal(4.344, 1.0);
    spec.honeypots_hit =
        static_cast<int>(reflection_rng.uniform_int(1, 24));
    reflection.push_back(spec);
  }

  DetectWorkload workload;
  telescope::TelescopeSynthesizer synthesizer(rng.fork("telescope").next_u64());
  telescope::NoiseConfig noise;
  noise.scan_pps = 20.0;
  noise.misconfig_pps = 10.0;
  noise.benign_icmp_pps = 5.0;
  workload.packets =
      synthesizer.synthesize(direct, 0.0, config.window_s, noise);

  workload.fleet = std::make_unique<amppot::HoneypotFleet>(
      rng.fork("fleet").next_u64());
  amppot::ScannerNoiseConfig scanner_noise;
  scanner_noise.scans_per_hour_per_honeypot = 6.0;
  workload.fleet->run(reflection, 0.0, config.window_s, scanner_noise);
  return workload;
}

}  // namespace dosm::parallel
