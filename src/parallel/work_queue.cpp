#include "parallel/work_queue.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace dosm::parallel {
namespace {

struct QueueMetrics {
  obs::Counter& tasks_executed;
  obs::Histogram& queue_wait_seconds;
  obs::Histogram& task_seconds;

  static QueueMetrics& get() {
    static QueueMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return QueueMetrics{
          reg.counter("parallel.tasks_executed",
                      "Shard tasks executed by the work queue"),
          reg.histogram("parallel.queue_wait_seconds",
                        "Delay between queue start and task claim",
                        obs::latency_buckets()),
          reg.histogram("parallel.task_seconds", "Per-task execution time",
                        obs::latency_buckets()),
      };
    }();
    return metrics;
  }
};

}  // namespace

void run_tasks(std::size_t num_tasks, int threads,
               const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  QueueMetrics& metrics = QueueMetrics::get();
  const std::size_t workers =
      threads <= 1 ? 1
                   : std::min<std::size_t>(static_cast<std::size_t>(threads),
                                           num_tasks);
  if (workers == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      metrics.tasks_executed.inc();
      const obs::ScopedTimer timer(metrics.task_seconds);
      task(i);
    }
    return;
  }
  const std::uint64_t queue_start_ns =
      obs::enabled() ? obs::monotonic_now_ns() : 0;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      if (obs::enabled()) {
        metrics.queue_wait_seconds.observe(
            static_cast<double>(obs::monotonic_now_ns() - queue_start_ns) *
            1e-9);
      }
      metrics.tasks_executed.inc();
      try {
        const obs::ScopedTimer timer(metrics.task_seconds);
        task(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the caller is worker 0
  for (auto& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dosm::parallel
