#include "parallel/work_queue.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dosm::parallel {

void run_tasks(std::size_t num_tasks, int threads,
               const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  const std::size_t workers =
      threads <= 1 ? 1
                   : std::min<std::size_t>(static_cast<std::size_t>(threads),
                                           num_tasks);
  if (workers == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      try {
        task(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the caller is worker 0
  for (auto& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dosm::parallel
