#include "parallel/detect.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "parallel/merge.h"
#include "parallel/shard.h"
#include "parallel/work_queue.h"
#include "telescope/backscatter.h"

namespace dosm::parallel {
namespace {

struct ShardMetrics {
  obs::Counter& shard_packets;
  obs::Counter& shard_events;
  obs::Histogram& merge_seconds;

  static ShardMetrics& get() {
    static ShardMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return ShardMetrics{
          reg.counter("parallel.shard_backscatter_packets",
                      "Backscatter packets processed across shards"),
          reg.counter("parallel.shard_events",
                      "Events emitted across shards before the k-way merge"),
          reg.histogram("parallel.merge_seconds",
                        "Deterministic k-way merge time",
                        obs::latency_buckets()),
      };
    }();
    return metrics;
  }
};

}  // namespace

bool telescope_event_less(const telescope::TelescopeEvent& a,
                          const telescope::TelescopeEvent& b) {
  return std::tie(a.start, a.victim) < std::tie(b.start, b.victim);
}

bool amppot_event_less(const amppot::AmpPotEvent& a,
                       const amppot::AmpPotEvent& b) {
  return std::tie(a.start, a.victim, a.protocol) <
         std::tie(b.start, b.victim, b.protocol);
}

void canonical_sort(std::vector<telescope::TelescopeEvent>& events) {
  std::sort(events.begin(), events.end(), telescope_event_less);
}

void canonical_sort(std::vector<amppot::AmpPotEvent>& events) {
  std::sort(events.begin(), events.end(), amppot_event_less);
}

ParallelBackscatterDetector::ParallelBackscatterDetector(
    ParallelConfig parallel, telescope::ClassifierThresholds thresholds,
    double flow_timeout_s)
    : parallel_(parallel),
      thresholds_(thresholds),
      flow_timeout_s_(flow_timeout_s) {}

std::vector<telescope::TelescopeEvent> ParallelBackscatterDetector::detect(
    std::span<const net::PacketRecord> packets) {
  const std::size_t num_shards = parallel_.effective_shards();
  std::vector<std::vector<telescope::TelescopeEvent>> per_shard(num_shards);
  std::vector<TelescopeDetectStats> shard_stats(num_shards);

  run_tasks(num_shards, parallel_.threads, [&](std::size_t shard) {
    auto& events = per_shard[shard];
    TelescopeDetectStats& stats = shard_stats[shard];
    telescope::FlowTable table(
        [&](const telescope::TelescopeEvent& event) {
          if (telescope::passes_thresholds_recorded(event, thresholds_)) {
            ++stats.events_emitted;
            events.push_back(event);
          } else {
            ++stats.flows_filtered;
          }
        },
        flow_timeout_s_);
    // Every worker walks the whole stream so its table's lazy sweep fires
    // at exactly the sequential cadence (see detect.h); only this shard's
    // backscatter mutates flow state.
    for (const auto& rec : packets) {
      if (!telescope::is_backscatter(rec)) {
        table.advance(rec.timestamp());
        continue;
      }
      const auto info = telescope::classify_backscatter(rec);
      if (shard_of(info.victim, num_shards) == shard) {
        ++stats.backscatter_packets;
        table.add(rec.timestamp(), info, rec.ip_len, rec.dst);
      } else {
        table.advance(rec.timestamp());
      }
    }
    table.flush();
    std::sort(events.begin(), events.end(), telescope_event_less);
  });

  stats_ = TelescopeDetectStats{};
  stats_.packets_seen = packets.size();
  for (const auto& s : shard_stats) {
    stats_.backscatter_packets += s.backscatter_packets;
    stats_.flows_filtered += s.flows_filtered;
    stats_.events_emitted += s.events_emitted;
  }
  ShardMetrics& metrics = ShardMetrics::get();
  metrics.shard_packets.add(stats_.backscatter_packets);
  metrics.shard_events.add(stats_.events_emitted);
  const obs::ScopedTimer merge_timer(metrics.merge_seconds);
  return kway_merge(std::move(per_shard), telescope_event_less);
}

std::vector<amppot::AmpPotEvent> parallel_consolidate(
    std::span<const HoneypotLog> logs, const amppot::ConsolidatorConfig& config,
    const ParallelConfig& parallel) {
  const std::size_t num_shards = parallel.effective_shards();
  std::vector<std::vector<amppot::AmpPotEvent>> per_shard(num_shards);

  run_tasks(num_shards, parallel.threads, [&](std::size_t shard) {
    std::vector<amppot::AmpPotEvent> stage1;
    std::vector<amppot::RequestRecord> filtered;
    for (const auto& log : logs) {
      filtered.clear();
      for (const auto& req : log.requests) {
        if (shard_of(req.source, num_shards) == shard) filtered.push_back(req);
      }
      // Sessions are keyed by (victim, protocol), so consolidating the
      // victim-filtered sub-log yields exactly the sessions the full log
      // would produce for this shard's victims.
      auto events = amppot::consolidate_log(filtered, config, log.honeypot_id);
      stage1.insert(stage1.end(), events.begin(), events.end());
    }
    per_shard[shard] = amppot::merge_fleet_events(std::move(stage1));
  });

  ShardMetrics& metrics = ShardMetrics::get();
  for (const auto& events : per_shard) metrics.shard_events.add(events.size());
  const obs::ScopedTimer merge_timer(metrics.merge_seconds);
  return kway_merge(std::move(per_shard), amppot_event_less);
}

std::vector<amppot::AmpPotEvent> parallel_harvest(
    amppot::HoneypotFleet& fleet, const amppot::ConsolidatorConfig& config,
    const ParallelConfig& parallel) {
  std::vector<HoneypotLog> logs;
  logs.reserve(fleet.size());
  for (const auto& honeypot : fleet.honeypots())
    logs.push_back({honeypot.id(), honeypot.log()});
  auto events = parallel_consolidate(logs, config, parallel);
  fleet.clear_logs();
  return events;
}

}  // namespace dosm::parallel
