// Victim-hash sharding for the detection pipeline.
//
// Every piece of per-attack detector state — a FlowTable flow, an AmpPot
// consolidation session, a fleet merge group — is keyed by the victim
// address, so partitioning victims across shards partitions the detector
// state with no cross-shard interaction. The shard function is a fixed
// avalanche mix (not std::hash, whose value is implementation-defined) so
// shard assignment is identical on every platform and in every run.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/sanitize.h"
#include "net/ipv4.h"

namespace dosm::parallel {

/// 32-bit avalanche mix (the splitmix64 finalizer truncated to 32 bits).
/// Consecutive victim addresses land in unrelated shards, so a /24 under
/// attack does not serialize onto one worker.
DOSM_ALLOW_UNSIGNED_WRAP constexpr std::uint32_t mix32(std::uint32_t v) {
  v ^= v >> 16;
  v *= 0x7feb352dU;
  v ^= v >> 15;
  v *= 0x846ca68bU;
  v ^= v >> 16;
  return v;
}

/// The shard owning `victim` when the victim space is split `num_shards`
/// ways. `num_shards` must be >= 1.
inline std::size_t shard_of(net::Ipv4Addr victim, std::size_t num_shards) {
  return static_cast<std::size_t>(mix32(victim.value())) % num_shards;
}

}  // namespace dosm::parallel
