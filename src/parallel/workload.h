// Deterministic synthetic workload for the packet-level detection pipeline.
//
// `dosmeter detect`, bench_parallel, and the parallel tests all need the
// same thing: a telescope capture plus loaded honeypot logs generated from a
// seed, large enough to exercise flow expiry, session gaps, threshold
// filtering, and the fleet merge. Centralizing the generator keeps the CLI
// determinism check, the benchmark, and the byte-identity tests on one
// workload definition.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amppot/fleet.h"
#include "net/headers.h"
#include "telescope/synthesizer.h"

namespace dosm::parallel {

struct WorkloadConfig {
  std::uint64_t seed = 42;
  /// Ground-truth attack counts. Intensities straddle the detector
  /// thresholds so the filter path is exercised, not just the accept path.
  int direct_attacks = 400;
  int reflection_attacks = 120;
  /// Capture window [0, window_s) in simulated seconds.
  double window_s = 4.0 * 3600.0;
};

/// One materialized workload: a time-ordered telescope capture and a fleet
/// whose honeypot logs are loaded (run() already called) but not harvested.
struct DetectWorkload {
  std::vector<net::PacketRecord> packets;
  std::unique_ptr<amppot::HoneypotFleet> fleet;
};

/// Generates the workload for `config`. Identical configs yield identical
/// packets and logs (all randomness flows through the seeded Rng).
DetectWorkload make_workload(const WorkloadConfig& config);

}  // namespace dosm::parallel
