#include "dns/names.h"

#include <cctype>
#include <stdexcept>

#include "common/strings.h"

namespace dosm::dns {

NameTable::NameTable() {
  names_.emplace_back();  // sentinel for kNoName
}

NameId NameTable::intern(std::string_view name) {
  std::string normalized = to_lower(name);
  const auto it = index_.find(normalized);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<NameId>(names_.size());
  names_.push_back(normalized);
  index_.emplace(std::move(normalized), id);
  return id;
}

NameId NameTable::find(std::string_view name) const {
  const auto it = index_.find(to_lower(name));
  return it == index_.end() ? kNoName : it->second;
}

const std::string& NameTable::name(NameId id) const {
  if (id == kNoName || id >= names_.size())
    throw std::out_of_range("NameTable::name: unknown id");
  return names_[id];
}

std::string_view tld_of(std::string_view domain) {
  const auto dot = domain.rfind('.');
  if (dot == std::string_view::npos) return {};
  return domain.substr(dot + 1);
}

bool in_domain_suffix(std::string_view name, std::string_view suffix) {
  if (suffix.empty()) return false;
  if (name.size() == suffix.size()) return iends_with(name, suffix);
  if (name.size() < suffix.size() + 1) return false;
  return iends_with(name, suffix) &&
         name[name.size() - suffix.size() - 1] == '.';
}

bool is_valid_domain(std::string_view domain) {
  if (domain.empty() || domain.size() > 253) return false;
  std::size_t label_len = 0;
  for (std::size_t i = 0; i < domain.size(); ++i) {
    const char c = domain[i];
    if (c == '.') {
      if (label_len == 0 || domain[i - 1] == '-') return false;
      label_len = 0;
      continue;
    }
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                    (c == '-' && label_len > 0);
    if (!ok) return false;
    if (++label_len > 63) return false;
  }
  return label_len > 0;
}

}  // namespace dosm::dns
