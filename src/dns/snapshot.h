// The active-DNS measurement store (OpenINTEL substitute).
//
// OpenINTEL takes a full daily snapshot of each zone. Storing 731 dense
// snapshots would be quadratic in practice, so the store keeps, per domain,
// a *timeline of record changes*: day-stamped WebsiteRecord versions. A
// point query ("what did www.example.com resolve to on day d") binary-
// searches the timeline; the reverse index ("which Web sites sat on IP x on
// day d") is materialized once from the change log as per-IP interval lists.
// This is the join workhorse for the Web-impact (§5) and DPS-migration (§6)
// analyses.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "dns/names.h"
#include "net/ipv4.h"

namespace dosm::dns {

using DomainId = std::uint32_t;

/// The DNS-visible state of one Web site (the `www` label of a registered
/// domain) on a given day. A default-constructed record means "www label
/// absent" (the domain is registered but serves no Web content indicator).
struct WebsiteRecord {
  net::Ipv4Addr www_a;     // A record of the www label; 0.0.0.0 = none
  NameId www_cname = kNoName;  // CNAME the www label expands through
  NameId ns = kNoName;         // (primary) authoritative name server
  NameId mx = kNoName;         // mail exchanger host name
  net::Ipv4Addr mx_a;          // A record of the MX host (future-work hook)

  bool has_website() const { return www_a != net::Ipv4Addr(); }
  bool operator==(const WebsiteRecord&) const = default;
};

/// A registered domain's metadata plus its change timeline.
struct DomainEntry {
  std::string name;        // registered name, e.g. "example.com"
  int first_seen_day = 0;  // day offset when first observed in the zone
  int last_seen_day = 0;   // last day observed (inclusive)
  /// Day-stamped record versions, ascending by day; version i is effective
  /// from changes[i].day until the day before changes[i+1].day.
  struct Change {
    int day;
    WebsiteRecord record;
  };
  std::vector<Change> changes;
};

/// Interval entry of the reverse (IP -> sites) index.
struct HostingInterval {
  DomainId domain = 0;
  int from_day = 0;  // inclusive
  int to_day = 0;    // inclusive
};

/// Store of per-domain record timelines over a study window.
class SnapshotStore {
 public:
  explicit SnapshotStore(int num_days);

  /// Registers a domain first observed on `first_seen_day`. Returns its id.
  /// Domain names are unique; re-adding an existing name throws
  /// std::invalid_argument.
  DomainId add_domain(std::string_view name, int first_seen_day);

  /// Appends a record version effective from `day`. Days must be
  /// non-decreasing per domain and >= first_seen_day; otherwise throws
  /// std::invalid_argument. Consecutive identical records are coalesced.
  void record_change(DomainId domain, int day, const WebsiteRecord& record);

  /// Marks the last day the domain appears in the zone (default: window end).
  void set_last_seen(DomainId domain, int day);

  /// The record effective on `day`, or nullopt if the domain was not in the
  /// zone that day.
  std::optional<WebsiteRecord> record_on(DomainId domain, int day) const;

  const DomainEntry& entry(DomainId domain) const;
  DomainId find(std::string_view name) const;  // 0 = not found

  std::size_t num_domains() const { return domains_.size(); }
  int num_days() const { return num_days_; }

  /// Total (domain, day) observations — the "data points" scale figure of
  /// Table 2 counts collected RRs; we report one observation per live
  /// domain-day times the records-per-domain factor.
  std::uint64_t num_observations(int records_per_domain = 6) const;

  /// Builds (or rebuilds) the reverse index. Must be called after loading
  /// and before sites_on/intervals_for.
  void build_reverse_index();

  /// Domains whose www label resolved to `ip` on `day` (requires
  /// build_reverse_index()). Sorted by DomainId.
  std::vector<DomainId> sites_on(net::Ipv4Addr ip, int day) const;

  /// Number of such domains without materializing them.
  std::size_t count_sites_on(net::Ipv4Addr ip, int day) const;

  /// Domains whose MX host resolved to `ip` on `day` (requires
  /// build_reverse_index()) — the §8 mail-infrastructure extension.
  std::vector<DomainId> mail_domains_on(net::Ipv4Addr ip, int day) const;
  std::size_t count_mail_domains_on(net::Ipv4Addr ip, int day) const;

  /// All hosting intervals for an IP (requires build_reverse_index()).
  std::span<const HostingInterval> intervals_for(net::Ipv4Addr ip) const;

  /// Every IP that ever hosted a site (requires build_reverse_index()).
  std::vector<net::Ipv4Addr> hosting_ips() const;

  /// Iterates all domains: fn(DomainId, const DomainEntry&).
  template <typename Fn>
  void for_each_domain(Fn&& fn) const {
    for (DomainId id = 0; id < domains_.size(); ++id) fn(id, domains_[id]);
  }

 private:
  int num_days_;
  std::vector<DomainEntry> domains_;
  std::unordered_map<std::string, DomainId> by_name_;
  std::unordered_map<net::Ipv4Addr, std::vector<HostingInterval>> reverse_;
  std::unordered_map<net::Ipv4Addr, std::vector<HostingInterval>> mail_reverse_;
  bool reverse_built_ = false;
};

}  // namespace dosm::dns
