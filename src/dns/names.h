// Domain names and name interning.
//
// The DNS dataset holds hundreds of thousands of domains with per-day
// records; names are interned once into a NameTable and referenced by a
// 32-bit NameId everywhere else (0 is reserved for "no name").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dosm::dns {

using NameId = std::uint32_t;

inline constexpr NameId kNoName = 0;

/// Intern table mapping names <-> dense ids. Names are normalized to
/// lowercase ASCII on insertion.
class NameTable {
 public:
  NameTable();

  /// Returns the id for `name`, interning it if new.
  NameId intern(std::string_view name);

  /// Id if already interned, kNoName otherwise.
  NameId find(std::string_view name) const;

  /// The name for an id; throws std::out_of_range for unknown ids.
  const std::string& name(NameId id) const;

  std::size_t size() const { return names_.size() - 1; }  // excludes sentinel

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> index_;
};

/// The TLD (last label) of a domain name, lowercase, without the dot;
/// empty if there is no dot.
std::string_view tld_of(std::string_view domain);

/// True if `name` equals `suffix` or ends with "." + suffix
/// (case-insensitive) — the standard DNS-suffix match used by the DPS
/// classifier ("cdn.cloudflare.net" matches suffix "cloudflare.net").
bool in_domain_suffix(std::string_view name, std::string_view suffix);

/// Syntactic validity check used by the measurement loader: non-empty
/// letters/digits/hyphen labels separated by single dots.
bool is_valid_domain(std::string_view domain);

}  // namespace dosm::dns
