#include "dns/snapshot.h"

#include <algorithm>
#include <stdexcept>

#include "common/strings.h"

namespace dosm::dns {

SnapshotStore::SnapshotStore(int num_days) : num_days_(num_days) {
  if (num_days < 1)
    throw std::invalid_argument("SnapshotStore: num_days must be >= 1");
}

DomainId SnapshotStore::add_domain(std::string_view name, int first_seen_day) {
  if (first_seen_day < 0 || first_seen_day >= num_days_)
    throw std::invalid_argument("SnapshotStore::add_domain: day out of range");
  std::string normalized = to_lower(name);
  if (by_name_.contains(normalized))
    throw std::invalid_argument("SnapshotStore::add_domain: duplicate domain " +
                                normalized);
  const auto id = static_cast<DomainId>(domains_.size());
  DomainEntry entry;
  entry.name = normalized;
  entry.first_seen_day = first_seen_day;
  entry.last_seen_day = num_days_ - 1;
  domains_.push_back(std::move(entry));
  by_name_.emplace(domains_.back().name, id);
  reverse_built_ = false;
  return id;
}

void SnapshotStore::record_change(DomainId domain, int day,
                                  const WebsiteRecord& record) {
  DomainEntry& e = domains_.at(domain);
  if (day < e.first_seen_day || day >= num_days_)
    throw std::invalid_argument("SnapshotStore::record_change: day out of range");
  if (!e.changes.empty()) {
    if (day < e.changes.back().day)
      throw std::invalid_argument(
          "SnapshotStore::record_change: days must be non-decreasing");
    if (e.changes.back().record == record) return;  // coalesce no-ops
    if (e.changes.back().day == day) {
      e.changes.back().record = record;  // same-day overwrite
      reverse_built_ = false;
      return;
    }
  }
  e.changes.push_back({day, record});
  reverse_built_ = false;
}

void SnapshotStore::set_last_seen(DomainId domain, int day) {
  DomainEntry& e = domains_.at(domain);
  if (day < e.first_seen_day || day >= num_days_)
    throw std::invalid_argument("SnapshotStore::set_last_seen: day out of range");
  e.last_seen_day = day;
  reverse_built_ = false;
}

std::optional<WebsiteRecord> SnapshotStore::record_on(DomainId domain,
                                                      int day) const {
  const DomainEntry& e = domains_.at(domain);
  if (day < e.first_seen_day || day > e.last_seen_day) return std::nullopt;
  // Last change with change.day <= day.
  const auto it = std::upper_bound(
      e.changes.begin(), e.changes.end(), day,
      [](int d, const DomainEntry::Change& c) { return d < c.day; });
  if (it == e.changes.begin()) return WebsiteRecord{};  // no records yet
  return std::prev(it)->record;
}

const DomainEntry& SnapshotStore::entry(DomainId domain) const {
  return domains_.at(domain);
}

DomainId SnapshotStore::find(std::string_view name) const {
  const auto it = by_name_.find(to_lower(name));
  return it == by_name_.end() ? 0 : it->second;
}

std::uint64_t SnapshotStore::num_observations(int records_per_domain) const {
  std::uint64_t domain_days = 0;
  for (const auto& e : domains_)
    domain_days += static_cast<std::uint64_t>(e.last_seen_day - e.first_seen_day + 1);
  return domain_days * static_cast<std::uint64_t>(records_per_domain);
}

void SnapshotStore::build_reverse_index() {
  reverse_.clear();
  mail_reverse_.clear();
  for (DomainId id = 0; id < domains_.size(); ++id) {
    const DomainEntry& e = domains_[id];
    for (std::size_t i = 0; i < e.changes.size(); ++i) {
      const auto& change = e.changes[i];
      const int from = change.day;
      const int to = (i + 1 < e.changes.size())
                         ? std::min(e.changes[i + 1].day - 1, e.last_seen_day)
                         : e.last_seen_day;
      if (to < from) continue;
      if (change.record.has_website())
        reverse_[change.record.www_a].push_back({id, from, to});
      if (change.record.mx_a != net::Ipv4Addr())
        mail_reverse_[change.record.mx_a].push_back({id, from, to});
    }
  }
  const auto sort_intervals = [](auto& index) {
    for (auto& [ip, intervals] : index) {
      std::sort(intervals.begin(), intervals.end(),
                [](const HostingInterval& a, const HostingInterval& b) {
                  if (a.domain != b.domain) return a.domain < b.domain;
                  return a.from_day < b.from_day;
                });
    }
  };
  sort_intervals(reverse_);
  sort_intervals(mail_reverse_);
  reverse_built_ = true;
}

namespace {

std::vector<DomainId> domains_in_index(
    const std::unordered_map<net::Ipv4Addr, std::vector<HostingInterval>>& index,
    net::Ipv4Addr ip, int day) {
  std::vector<DomainId> out;
  const auto it = index.find(ip);
  if (it == index.end()) return out;
  for (const auto& interval : it->second) {
    if (day >= interval.from_day && day <= interval.to_day)
      out.push_back(interval.domain);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<DomainId> SnapshotStore::mail_domains_on(net::Ipv4Addr ip,
                                                     int day) const {
  if (!reverse_built_)
    throw std::logic_error(
        "SnapshotStore::mail_domains_on: reverse index not built");
  return domains_in_index(mail_reverse_, ip, day);
}

std::size_t SnapshotStore::count_mail_domains_on(net::Ipv4Addr ip,
                                                 int day) const {
  return mail_domains_on(ip, day).size();
}

std::vector<DomainId> SnapshotStore::sites_on(net::Ipv4Addr ip, int day) const {
  if (!reverse_built_)
    throw std::logic_error("SnapshotStore::sites_on: reverse index not built");
  std::vector<DomainId> out;
  const auto it = reverse_.find(ip);
  if (it == reverse_.end()) return out;
  for (const auto& interval : it->second) {
    if (day >= interval.from_day && day <= interval.to_day)
      out.push_back(interval.domain);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t SnapshotStore::count_sites_on(net::Ipv4Addr ip, int day) const {
  if (!reverse_built_)
    throw std::logic_error("SnapshotStore::count_sites_on: reverse index not built");
  const auto it = reverse_.find(ip);
  if (it == reverse_.end()) return 0;
  std::size_t count = 0;
  DomainId last = UINT32_MAX;
  for (const auto& interval : it->second) {
    if (day >= interval.from_day && day <= interval.to_day &&
        interval.domain != last) {
      ++count;
      last = interval.domain;
    }
  }
  return count;
}

std::span<const HostingInterval> SnapshotStore::intervals_for(
    net::Ipv4Addr ip) const {
  if (!reverse_built_)
    throw std::logic_error("SnapshotStore::intervals_for: reverse index not built");
  const auto it = reverse_.find(ip);
  if (it == reverse_.end()) return {};
  return it->second;
}

std::vector<net::Ipv4Addr> SnapshotStore::hosting_ips() const {
  if (!reverse_built_)
    throw std::logic_error("SnapshotStore::hosting_ips: reverse index not built");
  std::vector<net::Ipv4Addr> out;
  out.reserve(reverse_.size());
  for (const auto& [ip, intervals] : reverse_) out.push_back(ip);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dosm::dns
