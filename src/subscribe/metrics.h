// subscribe.* instrumentation: every counter/gauge the subscription
// dispatcher reports through the process-wide obs registry, registered once
// and cached as references (the obs contract: registration may lock,
// updates never do). The drop-policy counters are the contract surface:
// notifications_dropped is the only way a bounded per-subscription queue
// sheds load, and it must be observable.
#pragma once

#include "obs/metrics.h"

namespace dosm::subscribe {

struct Metrics {
  // Subscription lifecycle.
  obs::Counter& subscriptions_created;
  obs::Counter& subscriptions_removed;
  obs::Gauge& subscriptions_active;

  // Dispatch path.
  obs::Counter& events_ingested;     // AttackEvents lifted into alerts
  obs::Counter& alerts_dispatched;   // alerts entering the matcher
  obs::Counter& matches;             // (alert, subscription) pairs matched
  obs::Counter& coalesced;           // matches folded into a staged entry
  obs::Counter& ticks;               // coalescing windows flushed

  // Delivery and drop policy.
  obs::Counter& enqueued;            // notifications flushed into queues
  obs::Counter& dropped;             // drop-oldest evictions (queue bound)
  obs::Counter& fetches;             // fetch() calls answered
  obs::Counter& delivered;           // notifications handed to fetchers
  obs::Gauge& pending;               // notifications resident in queues

  static Metrics& get();
};

}  // namespace dosm::subscribe
