// Dispatcher: the push side of the watch/subscribe layer (ROADMAP item 5).
//
// An observer-pattern datastore in the spirit of SIMDIS MemoryDataStore:
// clients register Predicates and the streaming pipeline pushes matching
// alerts into bounded per-subscription queues. The dispatcher is itself a
// core::AlertSink, so it plugs directly into StreamingFusion (spike alerts)
// while ingest() lifts raw detector events into kNewAttack alerts —
// resolving the victim's ASN and country once per event, not per watcher.
//
// Dispatch pipeline, all under one mutex:
//
//   ingest/on_alert ─▶ SubscriptionIndex::match ─▶ stage (coalesce) ─▶
//   tick() ─▶ per-subscription queue (drop-oldest at the bound) ─▶
//   fetch(cursor) long-poll
//
// Contracts:
//  * Deterministic notification order — alerts dispatch in arrival order
//    and each alert stages its matches in ascending subscription-id order,
//    so the per-subscription sequence numbers realize the total order on
//    (event, subscription_id). A fetch at a given cursor over a given
//    dispatched history returns identical bytes every time.
//  * Coalescing — within one tick, alerts for the same victim (same kind +
//    target; same kind + day for victimless spikes) fold into one staged
//    notification whose `coalesced` counts the folds. Deltas are thereby
//    deduplicated per tick, the batching the paper's near-realtime §9
//    loop needs at millions of events.
//  * Drop policy — queues are bounded (DispatcherConfig::max_pending);
//    overflow evicts the OLDEST notification and counts it in both the
//    per-subscription `dropped` (surfaced in FetchResult) and the
//    subscribe.dropped obs counter. A client detects loss by a sequence
//    gap or the dropped delta; it never blocks the dispatch path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/time.h"
#include "core/alert.h"
#include "core/event.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"
#include "subscribe/index.h"
#include "subscribe/subscription.h"

namespace dosm::subscribe {

struct DispatcherConfig {
  /// Resolves the victim's origin AS for kNewAttack alerts (nullable).
  const meta::PrefixToAsMap* pfx2as = nullptr;
  /// Resolves the victim's country for kNewAttack alerts (nullable).
  const meta::GeoDatabase* geo = nullptr;
  /// Day resolution for event alerts; events outside get day = -1.
  StudyWindow window{};
  /// Per-subscription queue bound; the oldest notification is evicted when
  /// a tick would exceed it. Must be >= 1.
  std::size_t max_pending = 1024;
};

/// One queued delta. `seq` is per-subscription, 1-based, strictly
/// increasing; `coalesced` counts additional same-victim alerts folded into
/// this entry within its tick.
struct Notification {
  std::uint64_t seq = 0;
  std::uint32_t coalesced = 0;
  core::Alert alert;
};

struct FetchResult {
  /// Notifications with seq > cursor, in ascending seq order.
  std::vector<Notification> notifications;
  /// Cursor to pass next time: the last delivered seq (== the request
  /// cursor when nothing was delivered).
  std::uint64_t next_cursor = 0;
  /// Lifetime drop-oldest evictions for this subscription. A growing value
  /// between fetches means the client is too slow for its queue bound.
  std::uint64_t dropped = 0;
  /// Notifications still queued beyond next_cursor (more to fetch now).
  std::uint64_t pending = 0;
};

class Dispatcher final : public core::AlertSink {
 public:
  /// Throws std::invalid_argument when config.max_pending == 0.
  explicit Dispatcher(DispatcherConfig config = {});

  /// Registers a predicate; returns its id (never reused). Throws
  /// std::invalid_argument on an invalid predicate (see validate()).
  SubscriptionId subscribe(const Predicate& predicate);

  /// Unregisters; queued notifications are discarded and concurrent
  /// long-polls on the id return std::nullopt. False if unknown.
  bool unsubscribe(SubscriptionId id);

  /// Lifts one detected attack event into a kNewAttack alert (resolving
  /// ASN/country/day once) and dispatches it to matching subscriptions.
  void ingest(const core::AttackEvent& event);

  /// AlertSink: dispatches an already-built alert (StreamingFusion spikes).
  void on_alert(const core::Alert& alert) override;

  /// Closes the coalescing window: flushes staged notifications into the
  /// per-subscription queues (enforcing the drop policy) and wakes
  /// long-pollers. Call once per batch/day/tick of the ingest loop.
  void tick();

  /// Returns the notifications with seq > cursor (at most max_items; 0 =
  /// unlimited), blocking up to wait_ms milliseconds for one to arrive when
  /// the queue has nothing past the cursor. std::nullopt for an unknown or
  /// unsubscribed id. Pure function of (id, cursor, max_items) given a
  /// fixed dispatched history — the byte-determinism contract /watch
  /// inherits.
  std::optional<FetchResult> fetch(SubscriptionId id, std::uint64_t cursor,
                                   std::size_t max_items, int wait_ms = 0);

  std::size_t active_subscriptions() const;
  std::uint64_t events_ingested() const;
  std::uint64_t alerts_dispatched() const;

 private:
  struct Subscription {
    Predicate predicate;
    bool active = false;
    std::vector<Notification> queue;   // flushed, ascending seq
    std::vector<Notification> staged;  // open tick, pre-flush
    std::uint64_t next_seq = 1;
    std::uint64_t dropped = 0;
  };

  void dispatch_locked(const core::Alert& alert);
  /// Active subscription for id, else nullptr. Pointer invalidated by any
  /// unlock (subscribe() may grow subs_) — re-resolve after waits.
  Subscription* find_locked(SubscriptionId id);

  DispatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable data_ready_;
  std::vector<Subscription> subs_;  // index = id - 1; slots never reused
  SubscriptionIndex index_;
  std::vector<SubscriptionId> dirty_;  // staged-nonempty subs this tick
  std::vector<SubscriptionId> match_scratch_;
  std::size_t active_count_ = 0;
  std::uint64_t pending_total_ = 0;
  std::uint64_t events_ingested_ = 0;
  std::uint64_t alerts_dispatched_ = 0;
};

}  // namespace dosm::subscribe
