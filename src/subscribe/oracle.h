// ScanOracle: the naive O(all watchers) matcher the SubscriptionIndex is
// verified against. Every registered predicate is evaluated against every
// alert — no postings, no slots, no shortcuts — so any divergence between
// oracle and index is an index bug by construction. Used by the property
// suite (tests/subscribe_test.cpp) and as the scan-all baseline
// bench_subscribe times the index against.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/alert.h"
#include "subscribe/subscription.h"

namespace dosm::subscribe {

class ScanOracle {
 public:
  void insert(SubscriptionId id, const Predicate& predicate) {
    subs_.emplace_back(id, predicate);
  }

  void erase(SubscriptionId id) {
    subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                               [id](const auto& entry) {
                                 return entry.first == id;
                               }),
                subs_.end());
  }

  /// Appends every matching id in ascending id order (insertion is
  /// ascending because ids are assigned monotonically).
  void match(const core::Alert& alert,
             std::vector<SubscriptionId>& out) const {
    for (const auto& [id, predicate] : subs_) {
      if (predicate.matches(alert)) out.push_back(id);
    }
  }

  std::size_t size() const { return subs_.size(); }

 private:
  std::vector<std::pair<SubscriptionId, Predicate>> subs_;
};

}  // namespace dosm::subscribe
