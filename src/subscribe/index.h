// SubscriptionIndex: the FrameIndex posting machinery run in reverse.
//
// query::FrameIndex maps an attribute value to the rows that carry it so a
// query touches only matching rows. Here the roles flip: postings map an
// attribute value to the subscriptions that watch for it, so dispatching an
// alert is O(matching watchers), not O(all watchers). Each subscription is
// indexed under exactly ONE primary attribute — the most selective field it
// constrains, in fixed priority order:
//
//   exact /32 target > containing /24 (prefix length in [24,32)) > ASN
//   > country > protocol > kind > scan list
//
// so the posting lists are pairwise disjoint and an alert's candidate set
// is the union of at most seven probes: its target's /32 and /24 postings,
// its ASN, country, and protocol postings, its kind posting, and the (small
// by design) scan list of subscriptions too broad to index (prefixes
// shorter than /24 and the firehose). Candidates are then verified against
// the full predicate, because the primary attribute is only one conjunct.
//
// Determinism: ids are assigned monotonically and inserted in id order, so
// every posting list is ascending and the merged candidate set — and
// therefore the match set — comes out in ascending subscription-id order
// without a sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/alert.h"
#include "subscribe/subscription.h"

namespace dosm::subscribe {

class SubscriptionIndex {
 public:
  /// Adds `id` under its primary attribute. Ids must be inserted in
  /// strictly increasing order (the Dispatcher's monotone assignment);
  /// out-of-order insertion throws std::invalid_argument, as does an
  /// invalid predicate (see validate()).
  void insert(SubscriptionId id, const Predicate& predicate);

  /// Removes `id`; the predicate must be the one it was inserted with.
  /// Returns false if the id is not present.
  bool erase(SubscriptionId id, const Predicate& predicate);

  /// Appends to `out` the ids whose full predicate matches `alert`, in
  /// ascending id order. `lookup` resolves a candidate id to its predicate
  /// (erased ids may linger in postings only transiently — the dispatcher
  /// erases eagerly, so every candidate id resolves).
  template <typename PredicateLookup>
  void match(const core::Alert& alert, const PredicateLookup& lookup,
             std::vector<SubscriptionId>& out) const {
    const std::size_t first = out.size();
    collect(alert, out);
    merge_ascending(out, first);
    verify(alert, lookup, out, first);
  }

  /// Candidate collection without verification (for stats/bench): appends
  /// the union of probed postings in ascending id order.
  void collect_candidates(const core::Alert& alert,
                          std::vector<SubscriptionId>& out) const {
    const std::size_t first = out.size();
    collect(alert, out);
    merge_ascending(out, first);
  }

  std::size_t size() const { return size_; }
  /// Subscriptions that every alert must scan (unindexable predicates).
  std::size_t scan_list_size() const { return scan_.size(); }

 private:
  // Which posting family a predicate's primary attribute lives in.
  enum class Slot : std::uint8_t {
    kTarget,   // prefix length 32
    kSlash24,  // prefix length in [24, 32)
    kAsn,
    kCountry,
    kProto,
    kKind,
    kScan,  // prefix shorter than /24, or no indexable field at all
  };
  static Slot slot_for(const Predicate& predicate);
  static std::uint16_t pack_country(meta::CountryCode country);

  // Appends raw candidates (each probed posting list in turn).
  void collect(const core::Alert& alert,
               std::vector<SubscriptionId>& out) const;
  // Merges the concatenated ascending runs in out[first..) into one
  // ascending run (lists are disjoint, so this is a sort of few runs).
  static void merge_ascending(std::vector<SubscriptionId>& out,
                              std::size_t first);
  // Drops candidates whose full predicate does not match.
  template <typename PredicateLookup>
  void verify(const core::Alert& alert, const PredicateLookup& lookup,
              std::vector<SubscriptionId>& out, std::size_t first) const {
    std::size_t write = first;
    for (std::size_t i = first; i < out.size(); ++i) {
      if (lookup(out[i]).matches(alert)) out[write++] = out[i];
    }
    out.resize(write);
  }

  std::unordered_map<std::uint32_t, std::vector<SubscriptionId>> by_target_;
  std::unordered_map<std::uint32_t, std::vector<SubscriptionId>> by_slash24_;
  std::unordered_map<std::uint32_t, std::vector<SubscriptionId>> by_asn_;
  std::unordered_map<std::uint16_t, std::vector<SubscriptionId>> by_country_;
  std::unordered_map<std::uint8_t, std::vector<SubscriptionId>> by_proto_;
  std::unordered_map<std::uint8_t, std::vector<SubscriptionId>> by_kind_;
  std::vector<SubscriptionId> scan_;
  SubscriptionId last_id_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dosm::subscribe
