// Subscription predicates: what a watcher wants to hear about.
//
// ROADMAP item 5: consumers stop polling /query and instead register
// interest — a victim prefix (/32 down to /8), an origin ASN, a country,
// an IP protocol, an alert kind, or any conjunction of those — and the
// streaming pipeline pushes matching alerts to them. A predicate is a
// conjunction: every set field must match for the alert to be delivered.
// An all-empty predicate is the firehose (matches every alert).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/alert.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"
#include "net/ipv4.h"

namespace dosm::subscribe {

/// Monotonically assigned, never reused. 0 is not a valid id.
using SubscriptionId = std::uint64_t;

struct Predicate {
  /// Victim address must fall inside this prefix.
  std::optional<net::Prefix> prefix;
  /// Victim's origin AS (as resolved by the dispatcher's pfx2as map).
  std::optional<meta::Asn> asn;
  /// Victim's country (as resolved by the dispatcher's geo database).
  std::optional<meta::CountryCode> country;
  /// Attack traffic IP protocol (6 = TCP, 17 = UDP, ...).
  std::optional<std::uint8_t> ip_proto;
  /// Alert kind; unset matches every kind.
  std::optional<core::AlertKind> kind;

  Predicate& match_prefix(net::Prefix p) { prefix = p; return *this; }
  Predicate& match_asn(meta::Asn a) { asn = a; return *this; }
  Predicate& match_country(meta::CountryCode c) { country = c; return *this; }
  Predicate& match_proto(std::uint8_t p) { ip_proto = p; return *this; }
  Predicate& match_kind(core::AlertKind k) { kind = k; return *this; }

  /// True when every set field matches the alert. Victim-attribute fields
  /// (prefix/asn/country/ip_proto) can only match alerts that carry an
  /// event; a spike alert has no victim, so any such field rules it out.
  bool matches(const core::Alert& alert) const;

  /// Canonical text form, e.g. "pfx=10.0.0.0/24;asn=65001;kind=new-attack".
  /// Field order is fixed; unset fields are omitted; "*" for the firehose.
  std::string to_string() const;
};

/// Throws std::invalid_argument for predicates the index cannot serve
/// meaningfully (currently: a country field that is not set to a real
/// code — CountryCode{} would silently match nothing).
void validate(const Predicate& predicate);

}  // namespace dosm::subscribe
