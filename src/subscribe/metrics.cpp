#include "subscribe/metrics.h"

namespace dosm::subscribe {

Metrics& Metrics::get() {
  static Metrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    return Metrics{
        reg.counter("subscribe.subscriptions.created",
                    "Subscriptions registered over the process lifetime"),
        reg.counter("subscribe.subscriptions.removed",
                    "Subscriptions unsubscribed"),
        reg.gauge("subscribe.subscriptions.active",
                  "Subscriptions currently registered"),
        reg.counter("subscribe.events_ingested",
                    "Attack events lifted into new-attack alerts"),
        reg.counter("subscribe.alerts_dispatched",
                    "Alerts run through the subscription matcher"),
        reg.counter("subscribe.matches",
                    "(alert, subscription) pairs the index matched"),
        reg.counter("subscribe.coalesced",
                    "Matches folded into an already-staged notification"),
        reg.counter("subscribe.ticks", "Coalescing windows flushed"),
        reg.counter("subscribe.enqueued",
                    "Notifications flushed into per-subscription queues"),
        reg.counter("subscribe.dropped",
                    "Oldest notifications evicted by the per-subscription "
                    "queue bound"),
        reg.counter("subscribe.fetches", "fetch() calls answered"),
        reg.counter("subscribe.delivered",
                    "Notifications handed to fetchers"),
        reg.gauge("subscribe.pending",
                  "Notifications resident in subscription queues"),
    };
  }();
  return metrics;
}

}  // namespace dosm::subscribe
