#include "subscribe/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "subscribe/metrics.h"

namespace dosm::subscribe {
namespace {

/// Same coalescing bucket: one victim's repeated alerts within a tick fold
/// into one delta (same kind + target for event alerts; same kind + day for
/// victimless spikes).
bool same_bucket(const core::Alert& a, const core::Alert& b) {
  if (a.kind != b.kind || a.has_event != b.has_event) return false;
  return a.has_event ? a.event.target == b.event.target : a.day == b.day;
}

}  // namespace

Dispatcher::Dispatcher(DispatcherConfig config) : config_(config) {
  if (config_.max_pending == 0)
    throw std::invalid_argument(
        "Dispatcher: max_pending must be >= 1 (a zero bound would drop "
        "every notification at the first tick)");
}

SubscriptionId Dispatcher::subscribe(const Predicate& predicate) {
  validate(predicate);
  Metrics& metrics = Metrics::get();
  std::uint64_t active = 0;
  SubscriptionId id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = static_cast<SubscriptionId>(subs_.size()) + 1;
    index_.insert(id, predicate);
    Subscription sub;
    sub.predicate = predicate;
    sub.active = true;
    subs_.push_back(std::move(sub));
    ++active_count_;
    active = active_count_;
  }
  metrics.subscriptions_created.inc();
  metrics.subscriptions_active.set(static_cast<std::int64_t>(active));
  return id;
}

bool Dispatcher::unsubscribe(SubscriptionId id) {
  Metrics& metrics = Metrics::get();
  std::uint64_t active = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Subscription* sub = find_locked(id);
    if (sub == nullptr) return false;
    index_.erase(id, sub->predicate);
    sub->active = false;
    pending_total_ -= sub->queue.size();
    sub->queue.clear();
    sub->queue.shrink_to_fit();
    sub->staged.clear();
    sub->staged.shrink_to_fit();
    --active_count_;
    active = active_count_;
    metrics.pending.set(static_cast<std::int64_t>(pending_total_));
  }
  metrics.subscriptions_removed.inc();
  metrics.subscriptions_active.set(static_cast<std::int64_t>(active));
  // Long-pollers on this id must observe the removal and return nullopt.
  data_ready_.notify_all();
  return true;
}

void Dispatcher::ingest(const core::AttackEvent& event) {
  const auto t = static_cast<UnixSeconds>(event.start);
  const int day = config_.window.contains(t) ? config_.window.day_of(t) : -1;
  const meta::Asn asn = config_.pfx2as != nullptr
                            ? config_.pfx2as->origin(event.target)
                            : meta::kUnknownAsn;
  const meta::CountryCode country = config_.geo != nullptr
                                        ? config_.geo->locate(event.target)
                                        : meta::CountryCode{};
  const core::Alert alert = core::event_alert(event, day, asn, country);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++events_ingested_;
  Metrics::get().events_ingested.inc();
  dispatch_locked(alert);
}

void Dispatcher::on_alert(const core::Alert& alert) {
  const std::lock_guard<std::mutex> lock(mutex_);
  dispatch_locked(alert);
}

void Dispatcher::dispatch_locked(const core::Alert& alert) {
  Metrics& metrics = Metrics::get();
  ++alerts_dispatched_;  // analyze:allow(shared-state-race): every caller holds mutex_ (dispatch_locked contract)
  metrics.alerts_dispatched.inc();
  match_scratch_.clear();
  index_.match(
      alert,
      [this](SubscriptionId id) -> const Predicate& {
        return subs_[id - 1].predicate;
      },
      match_scratch_);
  metrics.matches.add(static_cast<std::uint64_t>(match_scratch_.size()));
  // Ascending subscription-id order (the index contract) — together with
  // arrival-order dispatch this realizes the (event, subscription_id)
  // total order the determinism contract promises.
  for (const SubscriptionId id : match_scratch_) {
    Subscription& sub = subs_[id - 1];
    bool folded = false;
    for (Notification& staged : sub.staged) {
      if (same_bucket(staged.alert, alert)) {
        ++staged.coalesced;
        metrics.coalesced.inc();
        folded = true;
        break;
      }
    }
    if (folded) continue;
    if (sub.staged.empty()) dirty_.push_back(id);
    Notification notification;
    notification.seq = sub.next_seq++;
    notification.alert = alert;
    sub.staged.push_back(std::move(notification));
  }
}

void Dispatcher::tick() {
  Metrics& metrics = Metrics::get();
  bool flushed = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    metrics.ticks.inc();
    // dirty_ accumulates in first-staged order across alerts; sort so the
    // flush (and its metric updates) walk subscriptions deterministically.
    std::sort(dirty_.begin(), dirty_.end());
    for (const SubscriptionId id : dirty_) {
      Subscription& sub = subs_[id - 1];
      if (!sub.active) continue;  // unsubscribed mid-tick; already cleared
      metrics.enqueued.add(static_cast<std::uint64_t>(sub.staged.size()));
      pending_total_ += sub.staged.size();
      for (Notification& staged : sub.staged)
        sub.queue.push_back(std::move(staged));
      sub.staged.clear();
      if (sub.queue.size() > config_.max_pending) {
        const std::size_t excess = sub.queue.size() - config_.max_pending;
        sub.queue.erase(sub.queue.begin(),
                        sub.queue.begin() + static_cast<std::ptrdiff_t>(excess));
        sub.dropped += excess;
        pending_total_ -= excess;
        metrics.dropped.add(static_cast<std::uint64_t>(excess));
      }
    }
    flushed = !dirty_.empty();
    dirty_.clear();
    metrics.pending.set(static_cast<std::int64_t>(pending_total_));
  }
  if (flushed) data_ready_.notify_all();
}

std::optional<FetchResult> Dispatcher::fetch(SubscriptionId id,
                                             std::uint64_t cursor,
                                             std::size_t max_items,
                                             int wait_ms) {
  Metrics& metrics = Metrics::get();
  metrics.fetches.inc();
  std::unique_lock<std::mutex> lock(mutex_);
  Subscription* sub = find_locked(id);
  if (sub == nullptr) return std::nullopt;
  const auto has_delta = [](const Subscription& s, std::uint64_t after) {
    return !s.queue.empty() && s.queue.back().seq > after;
  };
  if (wait_ms > 0 && !has_delta(*sub, cursor)) {
    data_ready_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                         [&, this] {
                           sub = find_locked(id);
                           return sub == nullptr || has_delta(*sub, cursor);
                         });
    sub = find_locked(id);  // waits unlock; subs_ may have reallocated
    if (sub == nullptr) return std::nullopt;
  }
  FetchResult result;
  result.next_cursor = cursor;
  result.dropped = sub->dropped;
  for (const Notification& notification : sub->queue) {
    if (notification.seq <= cursor) continue;
    if (max_items != 0 && result.notifications.size() >= max_items) {
      ++result.pending;
      continue;
    }
    result.notifications.push_back(notification);
  }
  if (!result.notifications.empty())
    result.next_cursor = result.notifications.back().seq;
  metrics.delivered.add(
      static_cast<std::uint64_t>(result.notifications.size()));
  return result;
}

Dispatcher::Subscription* Dispatcher::find_locked(SubscriptionId id) {
  if (id == 0 || id > subs_.size()) return nullptr;
  Subscription& sub = subs_[id - 1];
  return sub.active ? &sub : nullptr;
}

std::size_t Dispatcher::active_subscriptions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return active_count_;
}

std::uint64_t Dispatcher::events_ingested() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_ingested_;
}

std::uint64_t Dispatcher::alerts_dispatched() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return alerts_dispatched_;
}

}  // namespace dosm::subscribe
