#include "subscribe/subscription.h"

#include <stdexcept>

namespace dosm::subscribe {

bool Predicate::matches(const core::Alert& alert) const {
  if (kind && *kind != alert.kind) return false;
  const bool needs_event = prefix || asn || country || ip_proto;
  if (needs_event && !alert.has_event) return false;
  if (prefix && !prefix->contains(alert.event.target)) return false;
  if (asn && *asn != alert.asn) return false;
  if (country && *country != alert.country) return false;
  if (ip_proto && *ip_proto != alert.event.ip_proto) return false;
  return true;
}

std::string Predicate::to_string() const {
  std::string out;
  const auto append = [&out](std::string_view field, std::string_view value) {
    if (!out.empty()) out += ';';
    out += field;
    out += '=';
    out += value;
  };
  std::string scratch;
  if (prefix) {
    scratch = prefix->to_string();
    append("pfx", scratch);
  }
  if (asn) {
    scratch = std::to_string(*asn);
    append("asn", scratch);
  }
  if (country) {
    scratch = country->to_string();
    append("cc", scratch);
  }
  if (ip_proto) {
    scratch = std::to_string(*ip_proto);
    append("proto", scratch);
  }
  if (kind) {
    scratch = core::to_string(*kind);
    append("kind", scratch);
  }
  if (out.empty()) out.push_back('*');
  return out;
}

void validate(const Predicate& predicate) {
  if (predicate.country && !predicate.country->is_set())
    throw std::invalid_argument(
        "subscribe::Predicate: country field set to the empty country code");
}

}  // namespace dosm::subscribe
