#include "subscribe/index.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dosm::subscribe {
namespace {

/// Network key for a /24 posting: the enclosing /24's network address.
constexpr std::uint32_t slash24_key(std::uint32_t addr) {
  return addr & 0xffffff00u;
}

template <typename Map, typename Key>
void probe(const Map& map, Key key, std::vector<SubscriptionId>& out) {
  const auto it = map.find(key);
  if (it != map.end())
    out.insert(out.end(), it->second.begin(), it->second.end());
}

template <typename Map, typename Key>
bool erase_from(Map& map, Key key, SubscriptionId id) {
  const auto it = map.find(key);
  if (it == map.end()) return false;
  auto& list = it->second;
  const auto pos = std::lower_bound(list.begin(), list.end(), id);
  if (pos == list.end() || *pos != id) return false;
  list.erase(pos);
  if (list.empty()) map.erase(it);
  return true;
}

}  // namespace

SubscriptionIndex::Slot SubscriptionIndex::slot_for(
    const Predicate& predicate) {
  // Most selective indexable field wins; unindexable predicates (prefixes
  // wider than /24 with no other field, or the firehose) go to the scan
  // list, which every alert pays for — kept small by construction.
  if (predicate.prefix && predicate.prefix->length() == 32)
    return Slot::kTarget;
  if (predicate.prefix && predicate.prefix->length() >= 24)
    return Slot::kSlash24;
  if (predicate.asn) return Slot::kAsn;
  if (predicate.country) return Slot::kCountry;
  if (predicate.ip_proto) return Slot::kProto;
  if (predicate.kind) return Slot::kKind;
  return Slot::kScan;
}

std::uint16_t SubscriptionIndex::pack_country(meta::CountryCode country) {
  const auto s = country.to_string();
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(static_cast<unsigned char>(s[0])) << 8) |
      static_cast<unsigned char>(s[1]));
}

void SubscriptionIndex::insert(SubscriptionId id, const Predicate& predicate) {
  validate(predicate);
  if (id <= last_id_)
    throw std::invalid_argument(
        "SubscriptionIndex::insert: ids must be strictly increasing; got " +
        std::to_string(id) + " after " + std::to_string(last_id_));
  last_id_ = id;
  switch (slot_for(predicate)) {
    case Slot::kTarget:
      by_target_[predicate.prefix->network().value()].push_back(id);
      break;
    case Slot::kSlash24:
      by_slash24_[slash24_key(predicate.prefix->network().value())].push_back(
          id);
      break;
    case Slot::kAsn:
      by_asn_[*predicate.asn].push_back(id);
      break;
    case Slot::kCountry:
      by_country_[pack_country(*predicate.country)].push_back(id);
      break;
    case Slot::kProto:
      by_proto_[*predicate.ip_proto].push_back(id);
      break;
    case Slot::kKind:
      by_kind_[static_cast<std::uint8_t>(*predicate.kind)].push_back(id);
      break;
    case Slot::kScan:
      scan_.push_back(id);
      break;
  }
  ++size_;
}

bool SubscriptionIndex::erase(SubscriptionId id, const Predicate& predicate) {
  bool erased = false;
  switch (slot_for(predicate)) {
    case Slot::kTarget:
      erased = erase_from(by_target_, predicate.prefix->network().value(), id);
      break;
    case Slot::kSlash24:
      erased = erase_from(by_slash24_,
                          slash24_key(predicate.prefix->network().value()), id);
      break;
    case Slot::kAsn:
      erased = erase_from(by_asn_, *predicate.asn, id);
      break;
    case Slot::kCountry:
      erased = erase_from(by_country_, pack_country(*predicate.country), id);
      break;
    case Slot::kProto:
      erased = erase_from(by_proto_, *predicate.ip_proto, id);
      break;
    case Slot::kKind:
      erased = erase_from(by_kind_,
                          static_cast<std::uint8_t>(*predicate.kind), id);
      break;
    case Slot::kScan: {
      const auto pos = std::lower_bound(scan_.begin(), scan_.end(), id);
      if (pos != scan_.end() && *pos == id) {
        scan_.erase(pos);
        erased = true;
      }
      break;
    }
  }
  if (erased) --size_;
  return erased;
}

void SubscriptionIndex::collect(const core::Alert& alert,
                                std::vector<SubscriptionId>& out) const {
  if (alert.has_event) {
    const std::uint32_t target = alert.event.target.value();
    probe(by_target_, target, out);
    probe(by_slash24_, slash24_key(target), out);
    probe(by_asn_, static_cast<std::uint32_t>(alert.asn), out);
    probe(by_country_, pack_country(alert.country), out);
    probe(by_proto_, alert.event.ip_proto, out);
  }
  probe(by_kind_, static_cast<std::uint8_t>(alert.kind), out);
  out.insert(out.end(), scan_.begin(), scan_.end());
}

void SubscriptionIndex::merge_ascending(std::vector<SubscriptionId>& out,
                                        std::size_t first) {
  // out[first..) is a concatenation of at most seven ascending, pairwise
  // disjoint runs (one per posting family probed); a plain sort restores
  // the global ascending order without needing a dedup pass.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

}  // namespace dosm::subscribe
