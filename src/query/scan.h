// Naive linear-scan query execution over raw AttackEvent rows.
//
// This is both the correctness oracle for the indexed Snapshot (the
// property tests compare every aggregation pairwise) and the baseline the
// query bench measures speedups against. It deliberately shares no code
// with the columnar path: each aggregation walks the full event span,
// re-deriving ASN and country per event with live metadata lookups, the
// way the batch analyses in core/ do today.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "query/query.h"

namespace dosm::query {

class ScanOracle {
 public:
  /// Borrows everything; callers keep events and metadata alive.
  ScanOracle(std::span<const core::AttackEvent> events, StudyWindow window,
             const meta::PrefixToAsMap& pfx2as, const meta::GeoDatabase& geo);

  bool matches(const Query& query, const core::AttackEvent& event) const;

  std::uint64_t count(const Query& query) const;
  std::uint64_t unique_targets(const Query& query) const;
  /// Attacks per window day (events starting outside the window are
  /// dropped, as in EventStore::daily_breakdown).
  DailySeries daily_attacks(const Query& query) const;
  std::vector<TargetCount> top_targets(const Query& query, std::size_t k) const;
  std::vector<AsnCount> top_asns(const Query& query, std::size_t k) const;
  /// Full Table-4-style ranking: unique targets per country, descending,
  /// with shares of the matching target population.
  std::vector<core::CountryCount> country_ranking(const Query& query) const;
  std::vector<core::CountryCount> top_countries(const Query& query,
                                                std::size_t k) const;

 private:
  std::span<const core::AttackEvent> events_;
  StudyWindow window_;
  const meta::PrefixToAsMap* pfx2as_;
  const meta::GeoDatabase* geo_;
};

}  // namespace dosm::query
