// The consolidated snapshot-construction surface.
//
// Every path that materializes columnar segments — the batch named
// constructors on Snapshot and the streaming SnapshotPublisher — needs the
// same three ingredients: the metadata joins resolved at build time
// (pfx2as, geo) and the worker count for the deterministic parallel frame
// build. BuildContext is that one bag of arguments, replacing the six
// positional parameters the old Snapshot::build / from_store /
// SnapshotPublisher signatures spread across call sites.
//
// Lifetimes: the metadata maps are BORROWED. For the batch builders they
// must stay alive for the duration of the build call; a SnapshotPublisher
// keeps a copy of the context, so there they must outlive the publisher
// itself. The finished Snapshot never touches them again (ASN and country
// are resolved into columns during the build).
#pragma once

#include <cstddef>

#include "meta/geo.h"
#include "meta/pfx2as.h"

namespace dosm::query {

struct BuildContext {
  /// Routeviews-style prefix-to-AS map; resolved per event at build time.
  const meta::PrefixToAsMap& pfx2as;
  /// Geolocation database; resolved per event at build time.
  const meta::GeoDatabase& geo;
  /// Worker threads per segment build. Any value yields byte-identical
  /// frames (see FrameBuilder::build(int)).
  int threads = 1;
  /// Batch-build segmentation: days per sealed FrameSegment. 0 keeps the
  /// whole dataset in a single segment (the full-rebuild layout). The
  /// streaming SnapshotPublisher always seals one segment per completed
  /// day regardless of this knob — that is its publish contract.
  int segment_days = 0;

  // Tiered-storage spill knobs, honored by storage::open_tiered when a
  // snapshot is materialized over an on-disk archive (src/storage). Pure
  // in-memory builds ignore both; results are byte-identical for any
  // setting — the knobs move bytes between tiers, never change answers.

  /// Trailing window days kept resident (hot) when opening an archive: a
  /// segment stays in memory iff it contains a start within the last
  /// `hot_days` days of the study window. 0 spills every segment cold.
  int hot_days = 0;
  /// Byte budget for the decoded cold-segment LRU cache (estimated decoded
  /// size, columns + index). 0 disables caching: every cold access decodes
  /// afresh and drops the segment when the query finishes.
  std::size_t cold_cache_bytes = 64u << 20;
};

}  // namespace dosm::query
