#include "query/engine.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace dosm::query {
namespace {

struct EngineMetrics {
  obs::Counter& snapshot_swaps;
  obs::Gauge& snapshot_events;
  obs::Histogram& publish_seconds;
  obs::Counter& segments_reused;

  static EngineMetrics& get() {
    static EngineMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return EngineMetrics{
          reg.counter("query.snapshot_swaps",
                      "Snapshots atomically published to the query engine"),
          reg.gauge("query.snapshot_events",
                    "Events in the most recently published snapshot"),
          reg.histogram("query.publish_seconds",
                        "Seal-new-day-and-publish time (incremental)",
                        obs::latency_buckets()),
          reg.counter("query.segment.reused",
                      "Previously sealed segments shared by pointer into a "
                      "newly published snapshot"),
      };
    }();
    return metrics;
  }
};

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const Snapshot> initial)
    : current_(std::move(initial)) {
  if (snapshot()) publishes_.store(1, std::memory_order_relaxed);
}

std::shared_ptr<const Snapshot> QueryEngine::snapshot() const {
  return current_.load(std::memory_order_acquire);
}

void QueryEngine::publish(std::shared_ptr<const Snapshot> next) {
  if (!next) throw std::invalid_argument("QueryEngine::publish: null snapshot");
  const auto current = snapshot();
  if (current && next->version() <= current->version())
    throw std::invalid_argument(
        "QueryEngine::publish: snapshot version must increase");
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.snapshot_events.set(static_cast<std::int64_t>(next->size()));
  metrics.snapshot_swaps.inc();
  current_.store(std::move(next), std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

SnapshotPublisher::SnapshotPublisher(QueryEngine& engine, StudyWindow window,
                                     const BuildContext& ctx)
    : engine_(&engine),
      window_(window),
      ctx_(ctx),
      day_builder_(window, ctx.pfx2as, ctx.geo) {}

void SnapshotPublisher::ingest(const core::AttackEvent& event) {
  if (event.start < last_start_)
    throw std::invalid_argument(
        "SnapshotPublisher::ingest: events must arrive in time order");
  last_start_ = event.start;

  const auto t = static_cast<UnixSeconds>(event.start);
  if (!window_.contains(t)) return;
  const int day = window_.day_of(t);
  if (current_day_ >= 0 && day > current_day_) seal_and_publish();
  current_day_ = day;

  day_builder_.add(event);
  ++events_ingested_;
}

void SnapshotPublisher::finish() {
  if (current_day_ >= 0) seal_and_publish();
  current_day_ = -1;
}

void SnapshotPublisher::seal_and_publish() {
  EngineMetrics& metrics = EngineMetrics::get();
  const obs::ScopedTimer timer(metrics.publish_seconds);
  metrics.segments_reused.add(sealed_.size());
  sealed_.push_back(seal_segment(day_builder_, ctx_));
  day_builder_ = FrameBuilder(window_, ctx_.pfx2as, ctx_.geo);
  engine_->publish(
      std::make_shared<const Snapshot>(window_, sealed_, next_version_));
  ++next_version_;
  ++snapshots_published_;
}

}  // namespace dosm::query
