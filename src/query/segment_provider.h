// The seam between the query layer and tiered (on-disk) segment storage.
//
// A Snapshot may hold a mix of resident FrameSegments (hot tier) and cold
// references that materialize on demand through a SegmentProvider — the
// storage layer (src/storage) implements this interface over an on-disk
// columnar archive plus a byte-budgeted decoded-segment cache. Keeping the
// interface here (and the implementation there) lets dosm_query stay
// ignorant of file formats while dosm_storage depends on dosm_query, not
// the other way around.
//
// Contract: fetch(id) must return a segment byte-identical to the one that
// was sealed and archived — same column bytes, same index — so query
// results over a cold segment are bit-for-bit those of the hot original at
// any cache budget (tests/storage_test.cpp holds this for all six
// aggregations). Both calls must be safe from concurrent reader threads.
#pragma once

#include <cstdint>
#include <memory>

#include "query/index.h"

namespace dosm::query {

class FrameSegment;

class SegmentProvider {
 public:
  virtual ~SegmentProvider() = default;

  /// Decodes (or returns a cached copy of) cold segment `id`. The returned
  /// pointer keeps the segment alive independently of the provider's cache,
  /// so an eviction can never invalidate an in-flight query.
  virtual std::shared_ptr<const FrameSegment> fetch(std::uint32_t id) const = 0;

  /// The smallest local row range that can contain starts in [t0, t1),
  /// computed from the archive's per-block zone maps WITHOUT loading the
  /// segment. An empty range proves the segment holds no candidate rows
  /// (the planner then skips the load entirely). Rows are start-sorted, so
  /// the range is contiguous; every excluded block is counted in
  /// storage.zone.block_skips by the implementation.
  virtual RowRange clip(std::uint32_t id, double t0, double t1) const = 0;
};

/// A cold segment slot: everything the planner needs to clip and order the
/// segment without touching the archive, plus the provider to materialize
/// it when rows must actually be scanned. Metadata comes from the archive
/// TOC and is validated against the decoded segment on load.
struct ColdSegmentRef {
  std::shared_ptr<const SegmentProvider> provider;
  std::uint32_t id = 0;     // provider-scoped segment id (archive position)
  std::uint32_t rows = 0;   // exact row count (global row ids depend on it)
  double start_min = 0.0;   // inclusive start-time bounds from the TOC
  double start_max = 0.0;
};

/// One Snapshot slot: resident (hot) when `resident` is non-null, otherwise
/// cold through `cold.provider`.
struct TieredSlot {
  std::shared_ptr<const FrameSegment> resident;
  ColdSegmentRef cold;
};

}  // namespace dosm::query
