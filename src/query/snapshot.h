// An immutable, indexed, servable view of the fused event dataset.
//
// A Snapshot is an ordered list of sealed FrameSegments (per-day or
// per-day-range columnar frames, each with its own postings/index — see
// query/segment.h). Queries run segment-at-a-time: a time filter first
// clips the segment list itself (segments are start-time buckets), then
// inside each surviving segment the tiny cost-based planner picks between
// the contiguous start-sorted row range and the equality postings (target
// /32, /24, ASN, country, port), and the executor verifies the remaining
// predicates column-wise.
//
// Row ids are GLOBAL: segment concatenation order, which by the bucket
// invariant equals the (start, target, source, insertion)-sorted order of
// a monolithic build — so results, row ids included, are identical at any
// segment granularity.
//
// Snapshots are immutable after construction and published by shared_ptr
// (see query/engine.h), so any number of reader threads may query one
// concurrently with no synchronization. Consecutive snapshots from the
// streaming publisher share sealed segments by pointer.
//
// Tiering: a slot may instead be a COLD reference (query/segment_provider.h)
// that the storage layer materializes on demand from an on-disk archive.
// The planner clips cold segments by their TOC metadata and per-block zone
// maps before loading anything; once a segment is fetched it goes through
// exactly the hot execution path, so results are byte-identical across
// tiers (the ExecBudget row budget counts MATCHED rows, which no access
// path or tier can change).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/event_store.h"
#include "query/budget.h"
#include "query/build_context.h"
#include "query/event_frame.h"
#include "query/index.h"
#include "query/query.h"
#include "query/segment.h"
#include "query/segment_provider.h"

namespace dosm::query {

class Snapshot {
 public:
  /// Assembles a snapshot over already-sealed segments (must be in bucket
  /// order; see segment.h). Prefer the named constructors for batch data —
  /// this is the streaming publisher's structural-sharing path.
  Snapshot(StudyWindow window,
           std::vector<std::shared_ptr<const FrameSegment>> segments,
           std::uint64_t version);

  /// Assembles a tiered snapshot over a mix of resident segments and cold
  /// references (slot order must still cover strictly increasing start
  /// ranges). This is storage::open_tiered's path; query results are
  /// byte-identical to a fully resident snapshot over the same segments.
  Snapshot(StudyWindow window, std::vector<TieredSlot> slots,
           std::uint64_t version);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Builds a snapshot over a raw event span. Metadata and build knobs come
  /// from the context (metadata borrowed only during the build);
  /// ctx.segment_days picks the segment granularity — every granularity
  /// and thread count yields identical query results.
  static std::shared_ptr<const Snapshot> build(
      StudyWindow window, std::span<const core::AttackEvent> events,
      const BuildContext& ctx, std::uint64_t version = 0);

  /// Builds a snapshot of a (finalized or not) batch EventStore.
  static std::shared_ptr<const Snapshot> from_store(
      const core::EventStore& store, const BuildContext& ctx,
      std::uint64_t version = 0);

  /// Sealed segments in time order. Cold slots appear as null pointers —
  /// callers that walk this span (structural-sharing checks, the archive
  /// writer) must hold a fully resident snapshot; see fully_resident().
  std::span<const std::shared_ptr<const FrameSegment>> segments() const {
    return segments_;
  }
  /// True when every slot is resident (no cold references).
  bool fully_resident() const { return num_cold_ == 0; }
  std::size_t num_segments() const { return segments_.size(); }
  const StudyWindow& window() const { return window_; }
  /// Total rows across all segments.
  std::size_t size() const { return total_rows_; }
  /// Publication sequence number (monotone per QueryEngine).
  std::uint64_t version() const { return version_; }

  // Field access by global row id (for event listings over match_rows()).
  double start_at(std::uint32_t row) const;
  double intensity_at(std::uint32_t row) const;
  net::Ipv4Addr target_at(std::uint32_t row) const;
  core::EventSource source_at(std::uint32_t row) const;
  std::uint16_t top_port_at(std::uint32_t row) const;

  /// The aggregate access path the executor would take, without running the
  /// query: per-segment candidate counts summed, the choice taken from the
  /// segment contributing the most candidates (the one that dominates
  /// execution cost). Empty snapshots report a zero-candidate full scan.
  QueryPlan plan(const Query& query) const;

  // Every aggregation accepts an optional ExecBudget (default: unlimited).
  // Blowing the row budget is deterministic for a given (snapshot, query);
  // both budget kinds surface as BudgetExceeded (see query/budget.h).
  std::uint64_t count(const Query& query, const ExecBudget& budget = {}) const;
  std::uint64_t unique_targets(const Query& query,
                               const ExecBudget& budget = {}) const;
  /// Attacks per window day (events starting outside the window are
  /// dropped, as in EventStore::daily_breakdown).
  DailySeries daily_attacks(const Query& query,
                            const ExecBudget& budget = {}) const;
  std::vector<TargetCount> top_targets(const Query& query, std::size_t k,
                                       const ExecBudget& budget = {}) const;
  std::vector<AsnCount> top_asns(const Query& query, std::size_t k,
                                 const ExecBudget& budget = {}) const;
  /// Table-4 semantics: unique matching targets per country, descending,
  /// with shares. Identical output to EventStore::country_ranking for the
  /// same source filter (regression-tested byte-for-byte).
  std::vector<core::CountryCount> country_ranking(
      const Query& query, const ExecBudget& budget = {}) const;
  std::vector<core::CountryCount> top_countries(
      const Query& query, std::size_t k, const ExecBudget& budget = {}) const;
  /// Matching global row ids in frame order (ascending start).
  std::vector<std::uint32_t> match_rows(const Query& query,
                                        const ExecBudget& budget = {}) const;

 private:
  /// Per-slot metadata, valid without materializing the slot: what the
  /// segment-list clip and the cold planner run on.
  struct SlotMeta {
    std::uint32_t rows = 0;
    double start_min = 0.0;
    double start_max = 0.0;

    bool overlaps(double t0, double t1) const {
      return start_min < t1 && start_max >= t0;
    }
  };

  struct Located {
    std::shared_ptr<const FrameSegment> keep_alive;  // set for cold slots
    const FrameSegment* segment;
    std::uint32_t row;  // local to the segment
  };
  Located locate(std::uint32_t row) const;

  /// Materializes slot s: resident pointer, or provider fetch for a cold
  /// slot (validated against the slot metadata). `keep` extends the cold
  /// segment's lifetime for the caller's scan.
  const FrameSegment& resolve(std::size_t s,
                              std::shared_ptr<const FrameSegment>& keep) const;

  static bool row_matches(const Query& query, const EventFrame& frame,
                          std::uint32_t row);
  static QueryPlan plan_segment(const Query& query, const FrameSegment& seg);

  /// Calls fn(frame, local_row, global_row) for every matching row, in
  /// global row order. Charges every MATCHED row against the row budget
  /// (access-path- and tier-independent) and polls the deadline per visited
  /// candidate; throws BudgetExceeded when a ceiling is hit.
  template <typename Fn>
  void for_each_match(const Query& query, const ExecBudget& budget,
                      Fn&& fn) const;

  StudyWindow window_;
  std::vector<std::shared_ptr<const FrameSegment>> segments_;  // null = cold
  std::vector<ColdSegmentRef> cold_;  // parallel to segments_ when tiered
  std::vector<SlotMeta> meta_;        // parallel: rows + start bounds
  std::vector<std::uint32_t> bases_;  // global row id of each segment's row 0
  std::size_t num_cold_ = 0;
  std::size_t total_rows_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace dosm::query
