// An immutable, indexed, servable view of the fused event dataset.
//
// A Snapshot is an ordered list of sealed FrameSegments (per-day or
// per-day-range columnar frames, each with its own postings/index — see
// query/segment.h). Queries run segment-at-a-time: a time filter first
// clips the segment list itself (segments are start-time buckets), then
// inside each surviving segment the tiny cost-based planner picks between
// the contiguous start-sorted row range and the equality postings (target
// /32, /24, ASN, country, port), and the executor verifies the remaining
// predicates column-wise.
//
// Row ids are GLOBAL: segment concatenation order, which by the bucket
// invariant equals the (start, target, source, insertion)-sorted order of
// a monolithic build — so results, row ids included, are identical at any
// segment granularity.
//
// Snapshots are immutable after construction and published by shared_ptr
// (see query/engine.h), so any number of reader threads may query one
// concurrently with no synchronization. Consecutive snapshots from the
// streaming publisher share sealed segments by pointer.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/event_store.h"
#include "query/budget.h"
#include "query/build_context.h"
#include "query/event_frame.h"
#include "query/index.h"
#include "query/query.h"
#include "query/segment.h"

namespace dosm::query {

class Snapshot {
 public:
  /// Assembles a snapshot over already-sealed segments (must be in bucket
  /// order; see segment.h). Prefer the named constructors for batch data —
  /// this is the streaming publisher's structural-sharing path.
  Snapshot(StudyWindow window,
           std::vector<std::shared_ptr<const FrameSegment>> segments,
           std::uint64_t version);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Builds a snapshot over a raw event span. Metadata and build knobs come
  /// from the context (metadata borrowed only during the build);
  /// ctx.segment_days picks the segment granularity — every granularity
  /// and thread count yields identical query results.
  static std::shared_ptr<const Snapshot> build(
      StudyWindow window, std::span<const core::AttackEvent> events,
      const BuildContext& ctx, std::uint64_t version = 0);

  /// Builds a snapshot of a (finalized or not) batch EventStore.
  static std::shared_ptr<const Snapshot> from_store(
      const core::EventStore& store, const BuildContext& ctx,
      std::uint64_t version = 0);

  /// Sealed segments in time order.
  std::span<const std::shared_ptr<const FrameSegment>> segments() const {
    return segments_;
  }
  std::size_t num_segments() const { return segments_.size(); }
  const StudyWindow& window() const { return window_; }
  /// Total rows across all segments.
  std::size_t size() const { return total_rows_; }
  /// Publication sequence number (monotone per QueryEngine).
  std::uint64_t version() const { return version_; }

  // Field access by global row id (for event listings over match_rows()).
  double start_at(std::uint32_t row) const;
  double intensity_at(std::uint32_t row) const;
  net::Ipv4Addr target_at(std::uint32_t row) const;
  core::EventSource source_at(std::uint32_t row) const;
  std::uint16_t top_port_at(std::uint32_t row) const;

  /// The aggregate access path the executor would take, without running the
  /// query: per-segment candidate counts summed, the choice taken from the
  /// segment contributing the most candidates (the one that dominates
  /// execution cost). Empty snapshots report a zero-candidate full scan.
  QueryPlan plan(const Query& query) const;

  // Every aggregation accepts an optional ExecBudget (default: unlimited).
  // Blowing the row budget is deterministic for a given (snapshot, query);
  // both budget kinds surface as BudgetExceeded (see query/budget.h).
  std::uint64_t count(const Query& query, const ExecBudget& budget = {}) const;
  std::uint64_t unique_targets(const Query& query,
                               const ExecBudget& budget = {}) const;
  /// Attacks per window day (events starting outside the window are
  /// dropped, as in EventStore::daily_breakdown).
  DailySeries daily_attacks(const Query& query,
                            const ExecBudget& budget = {}) const;
  std::vector<TargetCount> top_targets(const Query& query, std::size_t k,
                                       const ExecBudget& budget = {}) const;
  std::vector<AsnCount> top_asns(const Query& query, std::size_t k,
                                 const ExecBudget& budget = {}) const;
  /// Table-4 semantics: unique matching targets per country, descending,
  /// with shares. Identical output to EventStore::country_ranking for the
  /// same source filter (regression-tested byte-for-byte).
  std::vector<core::CountryCount> country_ranking(
      const Query& query, const ExecBudget& budget = {}) const;
  std::vector<core::CountryCount> top_countries(
      const Query& query, std::size_t k, const ExecBudget& budget = {}) const;
  /// Matching global row ids in frame order (ascending start).
  std::vector<std::uint32_t> match_rows(const Query& query,
                                        const ExecBudget& budget = {}) const;

 private:
  struct Located {
    const FrameSegment* segment;
    std::uint32_t row;  // local to the segment
  };
  Located locate(std::uint32_t row) const;

  static bool row_matches(const Query& query, const EventFrame& frame,
                          std::uint32_t row);
  static QueryPlan plan_segment(const Query& query, const FrameSegment& seg);

  /// Calls fn(frame, local_row, global_row) for every matching row, in
  /// global row order. Charges every VERIFIED candidate row against the
  /// budget; throws BudgetExceeded when a ceiling is hit.
  template <typename Fn>
  void for_each_match(const Query& query, const ExecBudget& budget,
                      Fn&& fn) const;

  StudyWindow window_;
  std::vector<std::shared_ptr<const FrameSegment>> segments_;
  std::vector<std::uint32_t> bases_;  // global row id of each segment's row 0
  std::size_t total_rows_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace dosm::query
