// An immutable, indexed, servable view of the fused event dataset.
//
// A Snapshot owns a columnar EventFrame plus its FrameIndex and answers
// Query aggregations through a tiny cost-based planner: every equality
// filter with a hash index (target /32, /24, ASN, country, port) and the
// time-range index nominate a candidate row set; the planner picks the
// smallest and the executor verifies the remaining predicates column-wise.
// Postings are ascending row ids and rows are start-sorted, so a time
// filter clips a postings list with two binary searches.
//
// Snapshots are immutable after construction and published by shared_ptr
// (see query/engine.h), so any number of reader threads may query one
// concurrently with no synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/event_store.h"
#include "query/event_frame.h"
#include "query/index.h"
#include "query/query.h"

namespace dosm::query {

class Snapshot {
 public:
  /// Builds the index over the given frame. Prefer the named constructors.
  Snapshot(EventFrame frame, std::uint64_t version);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Builds a snapshot over a raw event span, resolving ASN/country through
  /// the given metadata (borrowed only during the build). `threads` workers
  /// build the frame (byte-identical output for any count; see
  /// FrameBuilder::build(int)).
  static std::shared_ptr<const Snapshot> build(
      StudyWindow window, std::span<const core::AttackEvent> events,
      const meta::PrefixToAsMap& pfx2as, const meta::GeoDatabase& geo,
      std::uint64_t version = 0, int threads = 1);

  /// Builds a snapshot of a (finalized or not) batch EventStore.
  static std::shared_ptr<const Snapshot> from_store(
      const core::EventStore& store, const meta::PrefixToAsMap& pfx2as,
      const meta::GeoDatabase& geo, std::uint64_t version = 0,
      int threads = 1);

  const EventFrame& frame() const { return frame_; }
  const FrameIndex& index() const { return index_; }
  const StudyWindow& window() const { return frame_.window(); }
  std::size_t size() const { return frame_.size(); }
  /// Publication sequence number (monotone per QueryEngine).
  std::uint64_t version() const { return version_; }

  /// The access path the executor would take, without running the query.
  QueryPlan plan(const Query& query) const;

  std::uint64_t count(const Query& query) const;
  std::uint64_t unique_targets(const Query& query) const;
  /// Attacks per window day (events starting outside the window are
  /// dropped, as in EventStore::daily_breakdown).
  DailySeries daily_attacks(const Query& query) const;
  std::vector<TargetCount> top_targets(const Query& query, std::size_t k) const;
  std::vector<AsnCount> top_asns(const Query& query, std::size_t k) const;
  /// Table-4 semantics: unique matching targets per country, descending,
  /// with shares. Identical output to EventStore::country_ranking for the
  /// same source filter (regression-tested byte-for-byte).
  std::vector<core::CountryCount> country_ranking(const Query& query) const;
  std::vector<core::CountryCount> top_countries(const Query& query,
                                                std::size_t k) const;
  /// Matching row ids in frame order (ascending start), for event listings.
  std::vector<std::uint32_t> match_rows(const Query& query) const;

 private:
  bool row_matches(const Query& query, std::uint32_t row) const;

  template <typename Fn>
  void for_each_match(const Query& query, Fn&& fn) const;

  EventFrame frame_;
  FrameIndex index_;
  std::uint64_t version_ = 0;
};

}  // namespace dosm::query
