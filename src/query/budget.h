// Per-query execution budgets for the serving layer.
//
// A production query API cannot let one expensive query starve every other
// client, so the executor enforces two independent ceilings while a query
// runs (src/serve wires them per request; library callers default to
// unlimited):
//
//   max_rows     candidate rows the executor may VERIFY (rows visited by the
//                chosen access path, matching or not). Row accounting is a
//                pure function of (snapshot, query), so a row-budget abort
//                is fully deterministic: the same query against the same
//                snapshot version aborts at the same row on every worker.
//
//   deadline_ns  absolute obs::monotonic_now_ns() deadline, checked every
//                few thousand rows. Whether a timeout fires is inherently
//                timing-dependent; it can only ever convert a response into
//                an error, never change the bytes of a successful one —
//                which is how the serve determinism contract survives
//                wall-clock admission (DESIGN.md §12).
//
// A blown budget surfaces as BudgetExceeded; the serve layer maps it to a
// deterministic JSON error response (HTTP 422).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dosm::query {

struct ExecBudget {
  /// Candidate rows the executor may verify; 0 = unlimited.
  std::uint64_t max_rows = 0;
  /// Absolute monotonic-clock deadline in ns (obs::monotonic_now_ns
  /// epoch); 0 = none.
  std::uint64_t deadline_ns = 0;

  bool unlimited() const { return max_rows == 0 && deadline_ns == 0; }
};

class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kRows, kTime };

  BudgetExceeded(Kind kind, std::uint64_t limit)
      : std::runtime_error(kind == Kind::kRows
                               ? "query row budget exceeded (max_rows=" +
                                     std::to_string(limit) + ")"
                               : "query time budget exceeded"),
        kind_(kind),
        limit_(limit) {}

  Kind kind() const { return kind_; }
  /// The max_rows limit for kRows; the deadline for kTime.
  std::uint64_t limit() const { return limit_; }

 private:
  Kind kind_;
  std::uint64_t limit_;
};

}  // namespace dosm::query
