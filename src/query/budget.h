// Per-query execution budgets for the serving layer.
//
// A production query API cannot let one expensive query starve every other
// client, so the executor enforces two independent ceilings while a query
// runs (src/serve wires them per request; library callers default to
// unlimited):
//
//   max_rows     rows the executor may MATCH (rows that pass every
//                predicate and reach the aggregator). Matched rows — unlike
//                visited candidates — do not depend on which access path
//                the per-segment planner picks, so a row-budget abort is a
//                pure function of (dataset, query): identical at any
//                --segment-days granularity, identical hot vs cold tier,
//                identical on every worker.
//
//   deadline_ns  absolute obs::monotonic_now_ns() deadline, checked every
//                few thousand rows. Whether a timeout fires is inherently
//                timing-dependent; it can only ever convert a response into
//                an error, never change the bytes of a successful one —
//                which is how the serve determinism contract survives
//                wall-clock admission (DESIGN.md §12).
//
// A blown budget surfaces as BudgetExceeded; the serve layer maps it to a
// deterministic JSON error response (HTTP 422).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dosm::query {

struct ExecBudget {
  /// Matched rows the executor may deliver to the aggregator; 0 =
  /// unlimited. Access-path-independent (see header comment).
  std::uint64_t max_rows = 0;
  /// Absolute monotonic-clock deadline in ns (obs::monotonic_now_ns
  /// epoch); 0 = none.
  std::uint64_t deadline_ns = 0;

  bool unlimited() const { return max_rows == 0 && deadline_ns == 0; }
};

class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kRows, kTime };

  BudgetExceeded(Kind kind, std::uint64_t limit)
      : std::runtime_error(kind == Kind::kRows
                               ? "query row budget exceeded (max_rows=" +
                                     std::to_string(limit) + ")"
                               : "query time budget exceeded"),
        kind_(kind),
        limit_(limit) {}

  Kind kind() const { return kind_; }
  /// The max_rows limit for kRows; the deadline for kTime.
  std::uint64_t limit() const { return limit_; }

 private:
  Kind kind_;
  std::uint64_t limit_;
};

}  // namespace dosm::query
