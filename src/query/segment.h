// Immutable per-day (or per-day-range) building block of a Snapshot.
//
// A FrameSegment owns one columnar EventFrame plus the FrameIndex built
// over it. Segments are sealed exactly once — when a batch build buckets
// its input, or when the streaming publisher completes a day — and are
// immutable afterwards, so consecutive snapshots share sealed segments by
// shared_ptr (structural sharing: a day-boundary publish re-uses every
// previously sealed segment by pointer and pays only for the new day).
//
// Ordering invariant: segments are keyed by non-overlapping start-time
// buckets (pre-window, window days, post-window). Rows inside a segment
// are (start, target, source, insertion)-sorted by FrameBuilder, and every
// start in bucket k is strictly less than every start in bucket k+1, so
// the concatenation of a snapshot's segments is EXACTLY the row order of a
// monolithic full rebuild — which is what lets the property suite demand
// bit-identical aggregation results, row ids included, at any granularity.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "query/build_context.h"
#include "query/event_frame.h"
#include "query/index.h"

namespace dosm::query {

class FrameSegment {
 public:
  /// Builds the index over the given frame; prefer seal_segment().
  explicit FrameSegment(EventFrame frame)
      : frame_(std::move(frame)), index_(frame_) {}

  FrameSegment(const FrameSegment&) = delete;
  FrameSegment& operator=(const FrameSegment&) = delete;

  const EventFrame& frame() const { return frame_; }
  const FrameIndex& index() const { return index_; }
  std::size_t size() const { return frame_.size(); }

  /// Start-time bounds (inclusive); valid only for non-empty segments,
  /// which is all of them — empty buckets are never sealed.
  double start_min() const { return frame_.start().front(); }
  double start_max() const { return frame_.start().back(); }

  /// True when [t0, t1) can contain at least one of this segment's starts.
  bool overlaps(double t0, double t1) const {
    return start_min() < t1 && start_max() >= t0;
  }

 private:
  EventFrame frame_;
  FrameIndex index_;
};

/// Seals one segment from an accumulated builder: parallel frame build
/// (ctx.threads workers, byte-identical for any count) + index build, with
/// query.segment.* seal metrics recorded. The builder must be non-empty.
std::shared_ptr<const FrameSegment> seal_segment(const FrameBuilder& builder,
                                                 const BuildContext& ctx);

/// Buckets a raw event span by start time and seals one segment per
/// non-empty bucket, in time order. ctx.segment_days controls granularity:
/// 0 seals everything into a single segment; k > 0 groups window days into
/// runs of k, with out-of-window events (if any) in their own pre/post
/// buckets. The metadata in ctx is borrowed only for the duration of the
/// call.
std::vector<std::shared_ptr<const FrameSegment>> build_segments(
    StudyWindow window, std::span<const core::AttackEvent> events,
    const BuildContext& ctx);

}  // namespace dosm::query
