#include "query/segment.h"

#include <limits>
#include <map>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace dosm::query {
namespace {

struct SegmentMetrics {
  obs::Counter& sealed;
  obs::Counter& rows_sealed;
  obs::Histogram& seal_seconds;

  static SegmentMetrics& get() {
    static SegmentMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return SegmentMetrics{
          reg.counter("query.segment.sealed",
                      "Immutable frame segments sealed (built once)"),
          reg.counter("query.segment.rows_sealed",
                      "Event rows materialized into sealed segments"),
          reg.histogram("query.segment.seal_seconds",
                        "Per-segment frame + index build time",
                        obs::latency_buckets()),
      };
    }();
    return metrics;
  }
};

}  // namespace

std::shared_ptr<const FrameSegment> seal_segment(const FrameBuilder& builder,
                                                 const BuildContext& ctx) {
  SegmentMetrics& metrics = SegmentMetrics::get();
  const obs::ScopedTimer timer(metrics.seal_seconds);
  auto segment =
      std::make_shared<const FrameSegment>(builder.build(ctx.threads));
  metrics.sealed.inc();
  metrics.rows_sealed.add(segment->size());
  return segment;
}

std::vector<std::shared_ptr<const FrameSegment>> build_segments(
    StudyWindow window, std::span<const core::AttackEvent> events,
    const BuildContext& ctx) {
  std::vector<std::shared_ptr<const FrameSegment>> segments;
  if (events.empty()) return segments;

  if (ctx.segment_days <= 0) {
    FrameBuilder builder(window, ctx.pfx2as, ctx.geo);
    builder.add(events);
    segments.push_back(seal_segment(builder, ctx));
    return segments;
  }

  // Bucket keys order like event starts: everything before the window,
  // then runs of segment_days window days, then everything at/after the
  // window end. Ties in (start, target, source) share a start, hence a
  // bucket, so concatenating the sealed buckets reproduces the monolithic
  // sort order exactly (see segment.h).
  const auto key_of = [&](const core::AttackEvent& event) {
    const auto t = static_cast<UnixSeconds>(event.start);
    if (!window.contains(t)) {
      return t < window.start_time() ? std::numeric_limits<int>::min()
                                     : std::numeric_limits<int>::max();
    }
    return window.day_of(t) / ctx.segment_days;
  };

  std::map<int, FrameBuilder> buckets;
  for (const auto& event : events) {
    const int key = key_of(event);
    auto it = buckets.find(key);
    if (it == buckets.end()) {
      it = buckets.emplace(key, FrameBuilder(window, ctx.pfx2as, ctx.geo))
               .first;
    }
    it->second.add(event);
  }
  segments.reserve(buckets.size());
  for (const auto& [key, builder] : buckets)
    segments.push_back(seal_segment(builder, ctx));
  return segments;
}

}  // namespace dosm::query
