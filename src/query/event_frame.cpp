#include "query/event_frame.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "parallel/merge.h"
#include "parallel/work_queue.h"

namespace dosm::query {

PackedCountry pack_country(meta::CountryCode country) {
  const auto s = country.to_string();
  return static_cast<PackedCountry>(
      (static_cast<unsigned char>(s[0]) << 8) |
      static_cast<unsigned char>(s[1]));
}

meta::CountryCode unpack_country(PackedCountry packed) {
  const char chars[2] = {static_cast<char>(packed >> 8),
                         static_cast<char>(packed & 0xff)};
  return meta::CountryCode(std::string_view(chars, 2));
}

EventFrame EventFrame::from_columns(StudyWindow window, FrameColumns columns) {
  const std::size_t n = columns.start.size();
  if (columns.end.size() != n || columns.intensity.size() != n ||
      columns.target.size() != n || columns.source.size() != n ||
      columns.ip_proto.size() != n || columns.top_port.size() != n ||
      columns.asn.size() != n || columns.country.size() != n ||
      columns.day.size() != n)
    throw std::invalid_argument("EventFrame: column lengths disagree");
  if (!std::is_sorted(columns.start.begin(), columns.start.end()))
    throw std::invalid_argument("EventFrame: start column is not sorted");
  EventFrame frame;
  frame.window_ = window;
  frame.start_ = std::move(columns.start);
  frame.end_ = std::move(columns.end);
  frame.intensity_ = std::move(columns.intensity);
  frame.target_ = std::move(columns.target);
  frame.source_ = std::move(columns.source);
  frame.ip_proto_ = std::move(columns.ip_proto);
  frame.top_port_ = std::move(columns.top_port);
  frame.asn_ = std::move(columns.asn);
  frame.country_ = std::move(columns.country);
  frame.day_ = std::move(columns.day);
  return frame;
}

FrameBuilder::FrameBuilder(StudyWindow window,
                           const meta::PrefixToAsMap& pfx2as,
                           const meta::GeoDatabase& geo)
    : window_(window), pfx2as_(&pfx2as), geo_(&geo) {}

void FrameBuilder::add(const core::AttackEvent& event) {
  Row row;
  row.start = event.start;
  row.end = event.end;
  row.intensity = event.intensity;
  row.target = event.target.value();
  row.source = static_cast<std::uint8_t>(event.source);
  row.ip_proto = event.ip_proto;
  row.top_port = event.top_port;
  row.asn = pfx2as_->origin(event.target);
  row.country = pack_country(geo_->locate(event.target));
  const auto t = static_cast<UnixSeconds>(event.start);
  row.day = window_.contains(t) ? window_.day_of(t) : -1;
  rows_.push_back(row);
}

void FrameBuilder::add(std::span<const core::AttackEvent> events) {
  rows_.reserve(rows_.size() + events.size());
  for (const auto& event : events) add(event);
}

EventFrame FrameBuilder::build() const { return build(1); }

EventFrame FrameBuilder::build(int threads) const {
  // Total order: the trailing row index breaks (start, target, source) ties
  // (e.g. a telescope and honeypot event fusing to the same key fields), so
  // the permutation is unique and the parallel block-sort + merge lands on
  // exactly the sequential std::sort result.
  const auto less = [this](std::uint32_t a, std::uint32_t b) {
    const Row& ra = rows_[a];
    const Row& rb = rows_[b];
    return std::tie(ra.start, ra.target, ra.source, a) <
           std::tie(rb.start, rb.target, rb.source, b);
  };

  const std::size_t n = rows_.size();
  std::vector<std::uint32_t> order;
  if (threads <= 1 || n < 2) {
    order.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), less);
  } else {
    const std::size_t blocks =
        std::min<std::size_t>(static_cast<std::size_t>(threads), n);
    std::vector<std::vector<std::uint32_t>> runs(blocks);
    parallel::run_tasks(blocks, threads, [&](std::size_t b) {
      const std::size_t lo = n * b / blocks;
      const std::size_t hi = n * (b + 1) / blocks;
      auto& run = runs[b];
      run.resize(hi - lo);
      for (std::size_t i = lo; i < hi; ++i)
        run[i - lo] = static_cast<std::uint32_t>(i);
      std::sort(run.begin(), run.end(), less);
    });
    order = parallel::kway_merge(std::move(runs), less);
  }

  EventFrame frame;
  frame.window_ = window_;
  frame.start_.resize(n);
  frame.end_.resize(n);
  frame.intensity_.resize(n);
  frame.target_.resize(n);
  frame.source_.resize(n);
  frame.ip_proto_.resize(n);
  frame.top_port_.resize(n);
  frame.asn_.resize(n);
  frame.country_.resize(n);
  frame.day_.resize(n);
  // One task per column; each writes a disjoint vector, so the gather is
  // race-free and trivially deterministic.
  const std::function<void(std::size_t)> gather[] = {
      [&](std::size_t i) { frame.start_[i] = rows_[order[i]].start; },
      [&](std::size_t i) { frame.end_[i] = rows_[order[i]].end; },
      [&](std::size_t i) { frame.intensity_[i] = rows_[order[i]].intensity; },
      [&](std::size_t i) { frame.target_[i] = rows_[order[i]].target; },
      [&](std::size_t i) { frame.source_[i] = rows_[order[i]].source; },
      [&](std::size_t i) { frame.ip_proto_[i] = rows_[order[i]].ip_proto; },
      [&](std::size_t i) { frame.top_port_[i] = rows_[order[i]].top_port; },
      [&](std::size_t i) { frame.asn_[i] = rows_[order[i]].asn; },
      [&](std::size_t i) { frame.country_[i] = rows_[order[i]].country; },
      [&](std::size_t i) { frame.day_[i] = rows_[order[i]].day; },
  };
  parallel::run_tasks(std::size(gather), threads, [&](std::size_t column) {
    for (std::size_t i = 0; i < n; ++i) gather[column](i);
  });
  return frame;
}

}  // namespace dosm::query
