#include "query/event_frame.h"

#include <algorithm>
#include <tuple>

namespace dosm::query {

PackedCountry pack_country(meta::CountryCode country) {
  const auto s = country.to_string();
  return static_cast<PackedCountry>(
      (static_cast<unsigned char>(s[0]) << 8) |
      static_cast<unsigned char>(s[1]));
}

meta::CountryCode unpack_country(PackedCountry packed) {
  const char chars[2] = {static_cast<char>(packed >> 8),
                         static_cast<char>(packed & 0xff)};
  return meta::CountryCode(std::string_view(chars, 2));
}

FrameBuilder::FrameBuilder(StudyWindow window,
                           const meta::PrefixToAsMap& pfx2as,
                           const meta::GeoDatabase& geo)
    : window_(window), pfx2as_(&pfx2as), geo_(&geo) {}

void FrameBuilder::add(const core::AttackEvent& event) {
  Row row;
  row.start = event.start;
  row.end = event.end;
  row.intensity = event.intensity;
  row.target = event.target.value();
  row.source = static_cast<std::uint8_t>(event.source);
  row.ip_proto = event.ip_proto;
  row.top_port = event.top_port;
  row.asn = pfx2as_->origin(event.target);
  row.country = pack_country(geo_->locate(event.target));
  const auto t = static_cast<UnixSeconds>(event.start);
  row.day = window_.contains(t) ? window_.day_of(t) : -1;
  rows_.push_back(row);
}

void FrameBuilder::add(std::span<const core::AttackEvent> events) {
  rows_.reserve(rows_.size() + events.size());
  for (const auto& event : events) add(event);
}

EventFrame FrameBuilder::build() const {
  std::vector<std::uint32_t> order(rows_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Row& ra = rows_[a];
              const Row& rb = rows_[b];
              return std::tie(ra.start, ra.target, ra.source) <
                     std::tie(rb.start, rb.target, rb.source);
            });

  EventFrame frame;
  frame.window_ = window_;
  const std::size_t n = rows_.size();
  frame.start_.reserve(n);
  frame.end_.reserve(n);
  frame.intensity_.reserve(n);
  frame.target_.reserve(n);
  frame.source_.reserve(n);
  frame.ip_proto_.reserve(n);
  frame.top_port_.reserve(n);
  frame.asn_.reserve(n);
  frame.country_.reserve(n);
  frame.day_.reserve(n);
  for (const std::uint32_t i : order) {
    const Row& row = rows_[i];
    frame.start_.push_back(row.start);
    frame.end_.push_back(row.end);
    frame.intensity_.push_back(row.intensity);
    frame.target_.push_back(row.target);
    frame.source_.push_back(row.source);
    frame.ip_proto_.push_back(row.ip_proto);
    frame.top_port_.push_back(row.top_port);
    frame.asn_.push_back(row.asn);
    frame.country_.push_back(row.country);
    frame.day_.push_back(row.day);
  }
  return frame;
}

}  // namespace dosm::query
