// Columnar storage for the fused attack-event dataset (query subsystem).
//
// The batch EventStore and the streaming path both hold AttackEvent structs
// (array-of-structs). Ad-hoc queries touch only a few hot fields per
// predicate, so the serving layer re-materializes those fields as columns
// (struct-of-arrays): one contiguous vector per field, rows sorted by
// (start, target, source). Metadata joins that the analyses repeat per
// event — origin ASN (pfx2as) and country (geo) — are resolved once at
// build time and stored as columns of their own.
//
// An EventFrame is immutable after build(); snapshots share it by
// shared_ptr (see query/snapshot.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.h"
#include "core/event.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"

namespace dosm::query {

/// Country code packed into 16 bits for columnar storage ('U'<<8 | 'S').
using PackedCountry = std::uint16_t;

PackedCountry pack_country(meta::CountryCode country);
meta::CountryCode unpack_country(PackedCountry packed);

/// Immutable SoA view of the hot event fields plus resolved metadata.
/// Rows are sorted by (start, target, source); a row id is an index into
/// every column.
/// The ten frame columns as plain vectors — the exchange type between the
/// frame and the on-disk columnar archive (src/storage), which encodes and
/// decodes columns wholesale.
struct FrameColumns {
  std::vector<double> start;
  std::vector<double> end;
  std::vector<double> intensity;
  std::vector<std::uint32_t> target;
  std::vector<std::uint8_t> source;
  std::vector<std::uint8_t> ip_proto;
  std::vector<std::uint16_t> top_port;
  std::vector<meta::Asn> asn;
  std::vector<PackedCountry> country;
  std::vector<std::int32_t> day;
};

class EventFrame {
 public:
  EventFrame() = default;

  /// Reassembles a frame from already-materialized columns — the archive
  /// reader's path. Throws std::invalid_argument when column lengths
  /// disagree or `start` is not sorted ascending; the metadata columns are
  /// taken as-is (they were resolved when the frame was first built), so
  /// the result is byte-identical to the frame that was archived.
  static EventFrame from_columns(StudyWindow window, FrameColumns columns);

  std::size_t size() const { return start_.size(); }
  bool empty() const { return start_.empty(); }
  const StudyWindow& window() const { return window_; }

  std::span<const double> start() const { return start_; }
  std::span<const double> end() const { return end_; }
  std::span<const double> intensity() const { return intensity_; }
  std::span<const std::uint32_t> target() const { return target_; }
  std::span<const std::uint8_t> source() const { return source_; }
  std::span<const std::uint8_t> ip_proto() const { return ip_proto_; }
  std::span<const std::uint16_t> top_port() const { return top_port_; }
  /// Origin ASN of the target, meta::kUnknownAsn for unannounced space.
  std::span<const meta::Asn> asn() const { return asn_; }
  /// Country of the target (packed); pack of unknown_country() if unmapped.
  std::span<const PackedCountry> country() const { return country_; }
  /// Day offset of the event start within the window; -1 outside it.
  std::span<const std::int32_t> day() const { return day_; }

  net::Ipv4Addr target_at(std::size_t row) const {
    return net::Ipv4Addr(target_[row]);
  }
  core::EventSource source_at(std::size_t row) const {
    return static_cast<core::EventSource>(source_[row]);
  }

 private:
  friend class FrameBuilder;

  StudyWindow window_;
  std::vector<double> start_;
  std::vector<double> end_;
  std::vector<double> intensity_;
  std::vector<std::uint32_t> target_;
  std::vector<std::uint8_t> source_;
  std::vector<std::uint8_t> ip_proto_;
  std::vector<std::uint16_t> top_port_;
  std::vector<meta::Asn> asn_;
  std::vector<PackedCountry> country_;
  std::vector<std::int32_t> day_;
};

/// Accumulates events and materializes an EventFrame. The metadata maps are
/// borrowed for the builder's lifetime; lookups happen in add(), so build()
/// is a pure sort + gather.
class FrameBuilder {
 public:
  FrameBuilder(StudyWindow window, const meta::PrefixToAsMap& pfx2as,
               const meta::GeoDatabase& geo);

  void add(const core::AttackEvent& event);
  void add(std::span<const core::AttackEvent> events);

  std::size_t size() const { return rows_.size(); }

  /// Sorts rows by (start, target, source, insertion index) and emits the
  /// frame. The trailing index makes the key a total order, so the sorted
  /// permutation — and the frame — is identical however the sort is
  /// executed. The builder keeps its rows, so it can keep accumulating and
  /// build again (the streaming publisher rebuilds at every day boundary).
  EventFrame build() const;

  /// Same frame, built with up to `threads` workers: rows are block-sorted
  /// in parallel, k-way merged deterministically, and the columns gathered
  /// concurrently. Byte-identical to build() for any thread count.
  EventFrame build(int threads) const;

 private:
  struct Row {
    double start = 0.0;
    double end = 0.0;
    double intensity = 0.0;
    std::uint32_t target = 0;
    std::uint8_t source = 0;
    std::uint8_t ip_proto = 0;
    std::uint16_t top_port = 0;
    meta::Asn asn = meta::kUnknownAsn;
    PackedCountry country = 0;
    std::int32_t day = -1;
  };

  StudyWindow window_;
  const meta::PrefixToAsMap* pfx2as_;
  const meta::GeoDatabase* geo_;
  std::vector<Row> rows_;
};

}  // namespace dosm::query
