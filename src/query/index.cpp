#include "query/index.h"

#include <algorithm>

namespace dosm::query {

FrameIndex::FrameIndex(const EventFrame& frame) : frame_(&frame) {
  const std::size_t n = frame.size();
  day_rows_.assign(static_cast<std::size_t>(frame.window().num_days()), {});
  const auto day = frame.day();
  const auto target = frame.target();
  const auto port = frame.top_port();
  const auto asn = frame.asn();
  const auto country = frame.country();

  for (std::uint32_t row = 0; row < n; ++row) {
    if (day[row] >= 0) {
      auto& range = day_rows_[static_cast<std::size_t>(day[row])];
      if (range.size() == 0) range.begin = row;
      range.end = row + 1;
    }
    target_[target[row]].push_back(row);
    slash24_[target[row] & 0xffffff00u].push_back(row);
    asn_[asn[row]].push_back(row);
    country_[country[row]].push_back(row);
    port_[port[row]].push_back(row);
  }
}

RowRange FrameIndex::time_range(double t0, double t1) const {
  const auto start = frame_->start();
  const auto lo = std::lower_bound(start.begin(), start.end(), t0);
  const auto hi = std::lower_bound(lo, start.end(), t1);
  return {static_cast<std::uint32_t>(lo - start.begin()),
          static_cast<std::uint32_t>(hi - start.begin())};
}

RowRange FrameIndex::day_range(int day) const {
  if (day < 0 || static_cast<std::size_t>(day) >= day_rows_.size()) return {};
  return day_rows_[static_cast<std::size_t>(day)];
}

std::span<const std::uint32_t> FrameIndex::find(const Postings& postings,
                                                std::uint32_t key) {
  const auto it = postings.find(key);
  if (it == postings.end()) return {};
  return it->second;
}

std::span<const std::uint32_t> FrameIndex::by_target(std::uint32_t addr) const {
  return find(target_, addr);
}

std::span<const std::uint32_t> FrameIndex::by_slash24(std::uint32_t network) const {
  return find(slash24_, network & 0xffffff00u);
}

std::span<const std::uint32_t> FrameIndex::by_asn(meta::Asn asn) const {
  return find(asn_, asn);
}

std::span<const std::uint32_t> FrameIndex::by_country(PackedCountry country) const {
  return find(country_, country);
}

std::span<const std::uint32_t> FrameIndex::by_port(std::uint16_t port) const {
  return find(port_, port);
}

}  // namespace dosm::query
