// Secondary indexes over an EventFrame.
//
// Three families, all built in one pass over the sorted frame:
//
//   time    — rows are sorted by start, so a time-range filter is two
//             binary searches yielding a contiguous row range, and each
//             window day maps to a precomputed [begin, end) row range.
//   hash    — equality postings (sorted row-id vectors) keyed by target
//             /32, target /24, origin ASN, country, and top port.
//
// The postings vectors are ascending by construction (rows are visited in
// order), which the executor exploits to clip them against a time range
// with two more binary searches instead of per-row checks.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "query/event_frame.h"

namespace dosm::query {

/// A [begin, end) row-id range.
struct RowRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::uint32_t size() const { return end - begin; }
};

class FrameIndex {
 public:
  FrameIndex() = default;
  /// Builds all indexes; the frame must outlive the index (a Snapshot owns
  /// both).
  explicit FrameIndex(const EventFrame& frame);

  /// Rows whose start falls in [t0, t1); contiguous because the frame is
  /// start-sorted.
  RowRange time_range(double t0, double t1) const;

  /// Rows whose start falls on the given window day (0-based offset).
  RowRange day_range(int day) const;

  /// Equality postings; empty span when the key was never seen.
  std::span<const std::uint32_t> by_target(std::uint32_t addr) const;
  std::span<const std::uint32_t> by_slash24(std::uint32_t network) const;
  std::span<const std::uint32_t> by_asn(meta::Asn asn) const;
  std::span<const std::uint32_t> by_country(PackedCountry country) const;
  std::span<const std::uint32_t> by_port(std::uint16_t port) const;

  std::size_t num_targets() const { return target_.size(); }
  std::size_t num_slash24() const { return slash24_.size(); }
  std::size_t num_asns() const { return asn_.size(); }
  std::size_t num_countries() const { return country_.size(); }
  std::size_t num_ports() const { return port_.size(); }

 private:
  using Postings = std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>;

  static std::span<const std::uint32_t> find(const Postings& postings,
                                             std::uint32_t key);

  const EventFrame* frame_ = nullptr;
  // day -> [begin, end) row range; out-of-window rows sort to the edges and
  // belong to no day.
  std::vector<RowRange> day_rows_;
  Postings target_;
  Postings slash24_;
  Postings asn_;
  Postings country_;
  Postings port_;
};

}  // namespace dosm::query
