// The query model: composable filters + the aggregations the serving layer
// answers.
//
// A Query is a conjunction of optional predicates over the fused event
// dataset. Every execution path — the indexed Snapshot and the linear
// ScanOracle — answers the same Query with the same semantics, which the
// property tests enforce pairwise:
//
//   time           event START falls in [t0, t1) (the paper counts an event
//                  toward the day its start falls on, §5 fn. 15)
//   source         telescope / honeypot / combined
//   prefix         target address inside the CIDR prefix
//   asn            origin ASN of the target (Routeviews-style pfx2as)
//   country        geolocated country of the target
//   port           dominant victim port equals (telescope events; honeypot
//                  rows carry port 0)
//   min_intensity  raw intensity >= threshold (per-source scale, §4)
//
// Aggregations: count, unique targets, per-day series, top-k victims, top-k
// ASNs, country ranking (Table 4). Rankings order by unique targets
// descending with ascending key tie-breaks so results are deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/event_store.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"
#include "net/ipv4.h"

namespace dosm::query {

/// Half-open time interval in unix seconds.
struct TimeRange {
  double begin = 0.0;
  double end = 0.0;
};

struct Query {
  std::optional<TimeRange> time;
  core::SourceFilter source = core::SourceFilter::kCombined;
  std::optional<net::Prefix> prefix;
  std::optional<meta::Asn> asn;
  std::optional<meta::CountryCode> country;
  std::optional<std::uint16_t> port;
  std::optional<double> min_intensity;

  // Fluent builders so call sites read like the query they express.
  Query& between(double t0, double t1) {
    time = TimeRange{t0, t1};
    return *this;
  }
  Query& from_source(core::SourceFilter filter) {
    source = filter;
    return *this;
  }
  Query& in_prefix(net::Prefix p) {
    prefix = p;
    return *this;
  }
  Query& in_asn(meta::Asn a) {
    asn = a;
    return *this;
  }
  Query& in_country(meta::CountryCode c) {
    country = c;
    return *this;
  }
  Query& on_port(std::uint16_t p) {
    port = p;
    return *this;
  }
  Query& at_least(double intensity) {
    min_intensity = intensity;
    return *this;
  }

  /// Canonical 64-bit hash over EVERY filter field (presence and value),
  /// platform-stable: fields are folded in a fixed order with distinct
  /// per-field tags, doubles by bit pattern, so two queries collide only if
  /// they are semantically different yet hash-equal (the result cache pairs
  /// this key with the canonical string to rule even that out). Any change
  /// to any field changes the key (unit-tested); extending Query means
  /// extending this function and its test.
  std::uint64_t cache_key() const;
};

/// Human-readable filter list, e.g. for --explain output.
std::string to_string(const Query& query);

/// Top-k entry for per-victim rankings (ordered by events desc, addr asc).
struct TargetCount {
  net::Ipv4Addr target;
  std::uint64_t events = 0;

  bool operator==(const TargetCount&) const = default;
};

/// Top-k entry for per-AS rankings (ordered by unique targets desc, events
/// desc, asn asc). Unannounced space (kUnknownAsn) is excluded, matching
/// the Table-1 ASN rollup.
struct AsnCount {
  meta::Asn asn = meta::kUnknownAsn;
  std::uint64_t targets = 0;
  std::uint64_t events = 0;

  bool operator==(const AsnCount&) const = default;
};

/// Which access path the planner chose for a query.
enum class IndexChoice : std::uint8_t {
  kFullScan,   // no usable index; verify every row
  kTimeRange,  // contiguous start-sorted row range
  kTarget32,   // exact-target hash postings
  kSlash24,    // /24 hash postings
  kAsn,        // origin-AS hash postings
  kCountry,    // country hash postings
  kPort,       // top-port hash postings
};

std::string to_string(IndexChoice choice);

/// The planner's decision plus its candidate cardinality (rows the executor
/// must verify — the cost the planner minimized).
struct QueryPlan {
  IndexChoice choice = IndexChoice::kFullScan;
  std::uint64_t candidates = 0;
};

std::string to_string(const QueryPlan& plan);

}  // namespace dosm::query
