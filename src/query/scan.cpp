#include "query/scan.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace dosm::query {

ScanOracle::ScanOracle(std::span<const core::AttackEvent> events,
                       StudyWindow window, const meta::PrefixToAsMap& pfx2as,
                       const meta::GeoDatabase& geo)
    : events_(events), window_(window), pfx2as_(&pfx2as), geo_(&geo) {}

bool ScanOracle::matches(const Query& query,
                         const core::AttackEvent& event) const {
  if (query.time &&
      !(event.start >= query.time->begin && event.start < query.time->end))
    return false;
  if (!core::matches(query.source, event.source)) return false;
  if (query.prefix && !query.prefix->contains(event.target)) return false;
  if (query.asn && pfx2as_->origin(event.target) != *query.asn) return false;
  if (query.country && geo_->locate(event.target) != *query.country)
    return false;
  if (query.port && event.top_port != *query.port) return false;
  if (query.min_intensity && event.intensity < *query.min_intensity)
    return false;
  return true;
}

std::uint64_t ScanOracle::count(const Query& query) const {
  std::uint64_t n = 0;
  for (const auto& event : events_)
    if (matches(query, event)) ++n;
  return n;
}

std::uint64_t ScanOracle::unique_targets(const Query& query) const {
  std::unordered_set<std::uint32_t> targets;
  for (const auto& event : events_)
    if (matches(query, event)) targets.insert(event.target.value());
  return targets.size();
}

DailySeries ScanOracle::daily_attacks(const Query& query) const {
  DailySeries series(window_.num_days());
  for (const auto& event : events_) {
    if (!matches(query, event)) continue;
    const auto t = static_cast<UnixSeconds>(event.start);
    if (!window_.contains(t)) continue;
    series.add(window_.day_of(t), 1.0);
  }
  return series;
}

std::vector<TargetCount> ScanOracle::top_targets(const Query& query,
                                                 std::size_t k) const {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const auto& event : events_)
    if (matches(query, event)) ++counts[event.target.value()];
  std::vector<TargetCount> out;
  out.reserve(counts.size());
  for (const auto& [addr, events] : counts)
    out.push_back({net::Ipv4Addr(addr), events});
  std::sort(out.begin(), out.end(),
            [](const TargetCount& a, const TargetCount& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.target < b.target;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<AsnCount> ScanOracle::top_asns(const Query& query,
                                           std::size_t k) const {
  std::unordered_map<meta::Asn, std::unordered_set<std::uint32_t>> targets;
  std::unordered_map<meta::Asn, std::uint64_t> events;
  for (const auto& event : events_) {
    if (!matches(query, event)) continue;
    const auto asn = pfx2as_->origin(event.target);
    if (asn == meta::kUnknownAsn) continue;
    targets[asn].insert(event.target.value());
    ++events[asn];
  }
  std::vector<AsnCount> out;
  out.reserve(targets.size());
  for (const auto& [asn, addrs] : targets)
    out.push_back({asn, addrs.size(), events[asn]});
  std::sort(out.begin(), out.end(), [](const AsnCount& a, const AsnCount& b) {
    return std::tuple(b.targets, b.events, a.asn) <
           std::tuple(a.targets, a.events, b.asn);
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<core::CountryCount> ScanOracle::country_ranking(
    const Query& query) const {
  // Count each matching target once, in its geolocated country — the
  // Table-4 semantics of EventStore::country_ranking.
  std::unordered_set<std::uint32_t> seen;
  std::map<meta::CountryCode, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& event : events_) {
    if (!matches(query, event)) continue;
    if (!seen.insert(event.target.value()).second) continue;
    ++counts[geo_->locate(event.target)];
    ++total;
  }
  std::vector<core::CountryCount> out;
  out.reserve(counts.size());
  for (const auto& [country, count] : counts) {
    out.push_back({country, count,
                   total ? static_cast<double>(count) / static_cast<double>(total)
                         : 0.0});
  }
  std::sort(out.begin(), out.end(),
            [](const core::CountryCount& a, const core::CountryCount& b) {
              if (a.targets != b.targets) return a.targets > b.targets;
              return a.country < b.country;
            });
  return out;
}

std::vector<core::CountryCount> ScanOracle::top_countries(const Query& query,
                                                          std::size_t k) const {
  auto ranking = country_ranking(query);
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

}  // namespace dosm::query
