#include "query/snapshot.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace dosm::query {
namespace {

/// Clips an ascending postings list to row ids in [range.begin, range.end).
std::span<const std::uint32_t> clip(std::span<const std::uint32_t> postings,
                                    RowRange range) {
  const auto lo =
      std::lower_bound(postings.begin(), postings.end(), range.begin);
  const auto hi = std::lower_bound(lo, postings.end(), range.end);
  return postings.subspan(static_cast<std::size_t>(lo - postings.begin()),
                          static_cast<std::size_t>(hi - lo));
}

struct QueryMetrics {
  // One execution counter per access path, indexed by IndexChoice.
  obs::Counter& exec_full_scan;
  obs::Counter& exec_time_range;
  obs::Counter& exec_target32;
  obs::Counter& exec_slash24;
  obs::Counter& exec_asn;
  obs::Counter& exec_country;
  obs::Counter& exec_port;
  obs::Counter& postings_clipped;
  obs::Histogram& build_seconds;

  static QueryMetrics& get() {
    static QueryMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return QueryMetrics{
          reg.counter("query.exec.full_scan",
                      "Queries executed by full frame scan"),
          reg.counter("query.exec.time_range",
                      "Queries executed over the start-sorted time range"),
          reg.counter("query.exec.target32",
                      "Queries executed via the /32 target index"),
          reg.counter("query.exec.slash24",
                      "Queries executed via the /24 prefix index"),
          reg.counter("query.exec.asn", "Queries executed via the ASN index"),
          reg.counter("query.exec.country",
                      "Queries executed via the country index"),
          reg.counter("query.exec.port",
                      "Queries executed via the port index"),
          reg.counter("query.postings_clipped",
                      "Postings entries discarded by time-range clipping"),
          reg.histogram("query.snapshot_build_seconds",
                        "Column-frame snapshot build time",
                        obs::latency_buckets()),
      };
    }();
    return metrics;
  }

  void record_exec(IndexChoice choice) {
    switch (choice) {
      case IndexChoice::kFullScan: exec_full_scan.inc(); return;
      case IndexChoice::kTimeRange: exec_time_range.inc(); return;
      case IndexChoice::kTarget32: exec_target32.inc(); return;
      case IndexChoice::kSlash24: exec_slash24.inc(); return;
      case IndexChoice::kAsn: exec_asn.inc(); return;
      case IndexChoice::kCountry: exec_country.inc(); return;
      case IndexChoice::kPort: exec_port.inc(); return;
    }
  }
};

}  // namespace

Snapshot::Snapshot(EventFrame frame, std::uint64_t version)
    : frame_(std::move(frame)), index_(frame_), version_(version) {}

std::shared_ptr<const Snapshot> Snapshot::build(
    StudyWindow window, std::span<const core::AttackEvent> events,
    const meta::PrefixToAsMap& pfx2as, const meta::GeoDatabase& geo,
    std::uint64_t version, int threads) {
  FrameBuilder builder(window, pfx2as, geo);
  builder.add(events);
  const obs::ScopedTimer timer(QueryMetrics::get().build_seconds);
  return std::make_shared<const Snapshot>(builder.build(threads), version);
}

std::shared_ptr<const Snapshot> Snapshot::from_store(
    const core::EventStore& store, const meta::PrefixToAsMap& pfx2as,
    const meta::GeoDatabase& geo, std::uint64_t version, int threads) {
  return build(store.window(), store.events(), pfx2as, geo, version, threads);
}

QueryPlan Snapshot::plan(const Query& query) const {
  QueryPlan best{IndexChoice::kFullScan, frame_.size()};
  // With a time filter, every postings candidate is clipped to the
  // start-sorted row range first, so its cost is the clipped length.
  RowRange time_rows{0, static_cast<std::uint32_t>(frame_.size())};
  if (query.time) {
    time_rows = index_.time_range(query.time->begin, query.time->end);
    best = {IndexChoice::kTimeRange, time_rows.size()};
  }
  const auto consider = [&](IndexChoice choice,
                            std::span<const std::uint32_t> postings) {
    const std::uint64_t cost =
        query.time ? clip(postings, time_rows).size() : postings.size();
    if (cost < best.candidates) best = {choice, cost};
  };
  if (query.prefix && query.prefix->length() == 32)
    consider(IndexChoice::kTarget32, index_.by_target(query.prefix->network().value()));
  if (query.prefix && query.prefix->length() == 24)
    consider(IndexChoice::kSlash24, index_.by_slash24(query.prefix->network().value()));
  if (query.asn) consider(IndexChoice::kAsn, index_.by_asn(*query.asn));
  if (query.country)
    consider(IndexChoice::kCountry, index_.by_country(pack_country(*query.country)));
  if (query.port) consider(IndexChoice::kPort, index_.by_port(*query.port));
  return best;
}

bool Snapshot::row_matches(const Query& query, std::uint32_t row) const {
  if (query.time && !(frame_.start()[row] >= query.time->begin &&
                      frame_.start()[row] < query.time->end))
    return false;
  if (!core::matches(query.source, frame_.source_at(row))) return false;
  if (query.prefix &&
      (frame_.target()[row] & query.prefix->mask()) !=
          query.prefix->network().value())
    return false;
  if (query.asn && frame_.asn()[row] != *query.asn) return false;
  if (query.country &&
      frame_.country()[row] != pack_country(*query.country))
    return false;
  if (query.port && frame_.top_port()[row] != *query.port) return false;
  if (query.min_intensity && frame_.intensity()[row] < *query.min_intensity)
    return false;
  return true;
}

template <typename Fn>
void Snapshot::for_each_match(const Query& query, Fn&& fn) const {
  const QueryPlan chosen = plan(query);
  QueryMetrics::get().record_exec(chosen.choice);
  RowRange time_rows{0, static_cast<std::uint32_t>(frame_.size())};
  if (query.time)
    time_rows = index_.time_range(query.time->begin, query.time->end);

  const auto verify_postings = [&](std::span<const std::uint32_t> postings) {
    const auto clipped = clip(postings, time_rows);
    QueryMetrics::get().postings_clipped.add(postings.size() - clipped.size());
    for (const std::uint32_t row : clipped)
      if (row_matches(query, row)) fn(row);
  };
  switch (chosen.choice) {
    case IndexChoice::kFullScan:
      for (std::uint32_t row = 0; row < frame_.size(); ++row)
        if (row_matches(query, row)) fn(row);
      return;
    case IndexChoice::kTimeRange:
      for (std::uint32_t row = time_rows.begin; row < time_rows.end; ++row)
        if (row_matches(query, row)) fn(row);
      return;
    case IndexChoice::kTarget32:
      verify_postings(index_.by_target(query.prefix->network().value()));
      return;
    case IndexChoice::kSlash24:
      verify_postings(index_.by_slash24(query.prefix->network().value()));
      return;
    case IndexChoice::kAsn:
      verify_postings(index_.by_asn(*query.asn));
      return;
    case IndexChoice::kCountry:
      verify_postings(index_.by_country(pack_country(*query.country)));
      return;
    case IndexChoice::kPort:
      verify_postings(index_.by_port(*query.port));
      return;
  }
}

std::uint64_t Snapshot::count(const Query& query) const {
  std::uint64_t n = 0;
  for_each_match(query, [&](std::uint32_t) { ++n; });
  return n;
}

std::uint64_t Snapshot::unique_targets(const Query& query) const {
  std::unordered_set<std::uint32_t> targets;
  for_each_match(query,
                 [&](std::uint32_t row) { targets.insert(frame_.target()[row]); });
  return targets.size();
}

DailySeries Snapshot::daily_attacks(const Query& query) const {
  DailySeries series(window().num_days());
  for_each_match(query, [&](std::uint32_t row) {
    const std::int32_t day = frame_.day()[row];
    if (day >= 0) series.add(day, 1.0);
  });
  return series;
}

std::vector<TargetCount> Snapshot::top_targets(const Query& query,
                                               std::size_t k) const {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for_each_match(query, [&](std::uint32_t row) { ++counts[frame_.target()[row]]; });
  std::vector<TargetCount> out;
  out.reserve(counts.size());
  for (const auto& [addr, events] : counts)
    out.push_back({net::Ipv4Addr(addr), events});
  std::sort(out.begin(), out.end(),
            [](const TargetCount& a, const TargetCount& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.target < b.target;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<AsnCount> Snapshot::top_asns(const Query& query,
                                         std::size_t k) const {
  std::unordered_map<meta::Asn, std::unordered_set<std::uint32_t>> targets;
  std::unordered_map<meta::Asn, std::uint64_t> events;
  for_each_match(query, [&](std::uint32_t row) {
    const meta::Asn asn = frame_.asn()[row];
    if (asn == meta::kUnknownAsn) return;
    targets[asn].insert(frame_.target()[row]);
    ++events[asn];
  });
  std::vector<AsnCount> out;
  out.reserve(targets.size());
  for (const auto& [asn, addrs] : targets)
    out.push_back({asn, addrs.size(), events[asn]});
  std::sort(out.begin(), out.end(), [](const AsnCount& a, const AsnCount& b) {
    return std::tuple(b.targets, b.events, a.asn) <
           std::tuple(a.targets, a.events, b.asn);
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<core::CountryCount> Snapshot::country_ranking(
    const Query& query) const {
  // Packed codes order exactly like CountryCode (both compare the two ASCII
  // letters lexicographically), so sorting on the packed key reproduces the
  // EventStore tie-break.
  std::unordered_set<std::uint32_t> seen;
  std::unordered_map<PackedCountry, std::uint64_t> counts;
  std::uint64_t total = 0;
  for_each_match(query, [&](std::uint32_t row) {
    if (!seen.insert(frame_.target()[row]).second) return;
    ++counts[frame_.country()[row]];
    ++total;
  });
  std::vector<std::pair<PackedCountry, std::uint64_t>> entries(counts.begin(),
                                                               counts.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<core::CountryCount> out;
  out.reserve(entries.size());
  for (const auto& [packed, count] : entries) {
    out.push_back({unpack_country(packed), count,
                   total ? static_cast<double>(count) / static_cast<double>(total)
                         : 0.0});
  }
  return out;
}

std::vector<core::CountryCount> Snapshot::top_countries(const Query& query,
                                                        std::size_t k) const {
  auto ranking = country_ranking(query);
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

std::vector<std::uint32_t> Snapshot::match_rows(const Query& query) const {
  std::vector<std::uint32_t> rows;
  for_each_match(query, [&](std::uint32_t row) { rows.push_back(row); });
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace dosm::query
