#include "query/snapshot.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace dosm::query {
namespace {

/// Clips an ascending postings list to row ids in [range.begin, range.end).
std::span<const std::uint32_t> clip(std::span<const std::uint32_t> postings,
                                    RowRange range) {
  const auto lo =
      std::lower_bound(postings.begin(), postings.end(), range.begin);
  const auto hi = std::lower_bound(lo, postings.end(), range.end);
  return postings.subspan(static_cast<std::size_t>(lo - postings.begin()),
                          static_cast<std::size_t>(hi - lo));
}

struct QueryMetrics {
  // One execution counter per access path, indexed by IndexChoice. With
  // segmented snapshots these count per-SEGMENT executions: one query may
  // scan several segments, each through its own cheapest index.
  obs::Counter& exec_full_scan;
  obs::Counter& exec_time_range;
  obs::Counter& exec_target32;
  obs::Counter& exec_slash24;
  obs::Counter& exec_asn;
  obs::Counter& exec_country;
  obs::Counter& exec_port;
  obs::Counter& postings_clipped;
  obs::Counter& segments_scanned;
  obs::Counter& segments_skipped;
  obs::Counter& budget_rows_exceeded;
  obs::Counter& budget_time_exceeded;
  obs::Histogram& build_seconds;

  static QueryMetrics& get() {
    static QueryMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return QueryMetrics{
          reg.counter("query.exec.full_scan",
                      "Segment executions by full frame scan"),
          reg.counter("query.exec.time_range",
                      "Segment executions over the start-sorted time range"),
          reg.counter("query.exec.target32",
                      "Segment executions via the /32 target index"),
          reg.counter("query.exec.slash24",
                      "Segment executions via the /24 prefix index"),
          reg.counter("query.exec.asn",
                      "Segment executions via the ASN index"),
          reg.counter("query.exec.country",
                      "Segment executions via the country index"),
          reg.counter("query.exec.port",
                      "Segment executions via the port index"),
          reg.counter("query.postings_clipped",
                      "Postings entries discarded by time-range clipping"),
          reg.counter("query.segment.scanned",
                      "Segments executed on behalf of queries"),
          reg.counter("query.segment.skipped",
                      "Segments skipped by time-range segment clipping"),
          reg.counter("query.budget.rows_exceeded",
                      "Queries aborted by the candidate-row budget"),
          reg.counter("query.budget.time_exceeded",
                      "Queries aborted by the execution deadline"),
          reg.histogram("query.snapshot_build_seconds",
                        "Batch snapshot build time (all segments)",
                        obs::latency_buckets()),
      };
    }();
    return metrics;
  }

  void record_exec(IndexChoice choice) {
    switch (choice) {
      case IndexChoice::kFullScan: exec_full_scan.inc(); return;
      case IndexChoice::kTimeRange: exec_time_range.inc(); return;
      case IndexChoice::kTarget32: exec_target32.inc(); return;
      case IndexChoice::kSlash24: exec_slash24.inc(); return;
      case IndexChoice::kAsn: exec_asn.inc(); return;
      case IndexChoice::kCountry: exec_country.inc(); return;
      case IndexChoice::kPort: exec_port.inc(); return;
    }
  }
};

/// Per-execution budget accounting, global across the whole segment list.
///
/// The two ceilings deliberately count different things. The row budget
/// charges MATCHED rows only: the matched set — unlike the candidates an
/// access path happens to visit — is the same for every per-segment planner
/// choice, every --segment-days granularity, and every storage tier, so a
/// row-budget abort is a pure function of (dataset, query). The deadline is
/// polled per VISITED candidate on a stride (cheap, and visits bound the
/// actual work done); which queries it rejects is timing-dependent by
/// contract, and it never changes the bytes of a successful response.
class BudgetState {
 public:
  explicit BudgetState(const ExecBudget& budget) : budget_(budget) {}

  /// Once per visited candidate row, before verification.
  void visit() {
    if (budget_.deadline_ns == 0) return;
    ++visited_;
    // Poll on the first row (fail fast on an already-expired deadline —
    // scans shorter than the stride would otherwise never look at the
    // clock), then once per stride.
    if (visited_ % kDeadlineStride == 1 &&
        obs::monotonic_now_ns() > budget_.deadline_ns) {
      QueryMetrics::get().budget_time_exceeded.inc();
      throw BudgetExceeded(BudgetExceeded::Kind::kTime, budget_.deadline_ns);
    }
  }

  /// Once per matched row, before it reaches the aggregator: the
  /// (max_rows + 1)-th match aborts deterministically.
  void charge_match() {
    if (budget_.max_rows == 0) return;
    if (++matched_ > budget_.max_rows) {
      QueryMetrics::get().budget_rows_exceeded.inc();
      throw BudgetExceeded(BudgetExceeded::Kind::kRows, budget_.max_rows);
    }
  }

 private:
  static constexpr std::uint64_t kDeadlineStride = 4096;

  const ExecBudget& budget_;
  std::uint64_t visited_ = 0;
  std::uint64_t matched_ = 0;
};

}  // namespace

Snapshot::Snapshot(StudyWindow window,
                   std::vector<std::shared_ptr<const FrameSegment>> segments,
                   std::uint64_t version)
    : window_(window), segments_(std::move(segments)), version_(version) {
  meta_.reserve(segments_.size());
  bases_.reserve(segments_.size());
  double prev_max = -1.0e300;
  bool first = true;
  for (const auto& segment : segments_) {
    if (!segment || segment->size() == 0)
      throw std::invalid_argument("Snapshot: null or empty segment");
    if (!first && segment->start_min() <= prev_max)
      throw std::invalid_argument(
          "Snapshot: segments must cover strictly increasing start ranges");
    first = false;
    prev_max = segment->start_max();
    meta_.push_back({static_cast<std::uint32_t>(segment->size()),
                     segment->start_min(), segment->start_max()});
    bases_.push_back(static_cast<std::uint32_t>(total_rows_));
    total_rows_ += segment->size();
  }
}

Snapshot::Snapshot(StudyWindow window, std::vector<TieredSlot> slots,
                   std::uint64_t version)
    : window_(window), version_(version) {
  segments_.reserve(slots.size());
  cold_.reserve(slots.size());
  meta_.reserve(slots.size());
  bases_.reserve(slots.size());
  double prev_max = -1.0e300;
  bool first = true;
  for (TieredSlot& slot : slots) {
    SlotMeta meta;
    if (slot.resident != nullptr) {
      if (slot.resident->size() == 0)
        throw std::invalid_argument("Snapshot: empty resident segment");
      meta = {static_cast<std::uint32_t>(slot.resident->size()),
              slot.resident->start_min(), slot.resident->start_max()};
    } else {
      if (slot.cold.provider == nullptr || slot.cold.rows == 0 ||
          !(slot.cold.start_min <= slot.cold.start_max))
        throw std::invalid_argument("Snapshot: malformed cold segment ref");
      meta = {slot.cold.rows, slot.cold.start_min, slot.cold.start_max};
      ++num_cold_;
    }
    if (!first && meta.start_min <= prev_max)
      throw std::invalid_argument(
          "Snapshot: segments must cover strictly increasing start ranges");
    first = false;
    prev_max = meta.start_max;
    segments_.push_back(std::move(slot.resident));
    cold_.push_back(std::move(slot.cold));
    meta_.push_back(meta);
    bases_.push_back(static_cast<std::uint32_t>(total_rows_));
    total_rows_ += meta.rows;
  }
}

const FrameSegment& Snapshot::resolve(
    std::size_t s, std::shared_ptr<const FrameSegment>& keep) const {
  if (segments_[s] != nullptr) return *segments_[s];
  const ColdSegmentRef& cold = cold_[s];
  keep = cold.provider->fetch(cold.id);
  if (keep == nullptr || keep->size() != meta_[s].rows ||
      keep->start_min() != meta_[s].start_min ||
      keep->start_max() != meta_[s].start_max)
    throw std::runtime_error(
        "Snapshot: cold segment does not match its archived metadata");
  return *keep;
}

std::shared_ptr<const Snapshot> Snapshot::build(
    StudyWindow window, std::span<const core::AttackEvent> events,
    const BuildContext& ctx, std::uint64_t version) {
  const obs::ScopedTimer timer(QueryMetrics::get().build_seconds);
  return std::make_shared<const Snapshot>(
      window, build_segments(window, events, ctx), version);
}

std::shared_ptr<const Snapshot> Snapshot::from_store(
    const core::EventStore& store, const BuildContext& ctx,
    std::uint64_t version) {
  return build(store.window(), store.events(), ctx, version);
}

Snapshot::Located Snapshot::locate(std::uint32_t row) const {
  const auto it = std::upper_bound(bases_.begin(), bases_.end(), row);
  const auto index = static_cast<std::size_t>(it - bases_.begin()) - 1;
  Located at{nullptr, nullptr, row - bases_[index]};
  at.segment = &resolve(index, at.keep_alive);
  return at;
}

double Snapshot::start_at(std::uint32_t row) const {
  const Located at = locate(row);
  return at.segment->frame().start()[at.row];
}

double Snapshot::intensity_at(std::uint32_t row) const {
  const Located at = locate(row);
  return at.segment->frame().intensity()[at.row];
}

net::Ipv4Addr Snapshot::target_at(std::uint32_t row) const {
  const Located at = locate(row);
  return at.segment->frame().target_at(at.row);
}

core::EventSource Snapshot::source_at(std::uint32_t row) const {
  const Located at = locate(row);
  return at.segment->frame().source_at(at.row);
}

std::uint16_t Snapshot::top_port_at(std::uint32_t row) const {
  const Located at = locate(row);
  return at.segment->frame().top_port()[at.row];
}

QueryPlan Snapshot::plan_segment(const Query& query, const FrameSegment& seg) {
  const EventFrame& frame = seg.frame();
  const FrameIndex& index = seg.index();
  QueryPlan best{IndexChoice::kFullScan, frame.size()};
  // With a time filter, every postings candidate is clipped to the
  // start-sorted row range first, so its cost is the clipped length.
  RowRange time_rows{0, static_cast<std::uint32_t>(frame.size())};
  if (query.time) {
    time_rows = index.time_range(query.time->begin, query.time->end);
    best = {IndexChoice::kTimeRange, time_rows.size()};
  }
  const auto consider = [&](IndexChoice choice,
                            std::span<const std::uint32_t> postings) {
    const std::uint64_t cost =
        query.time ? clip(postings, time_rows).size() : postings.size();
    if (cost < best.candidates) best = {choice, cost};
  };
  if (query.prefix && query.prefix->length() == 32)
    consider(IndexChoice::kTarget32,
             index.by_target(query.prefix->network().value()));
  if (query.prefix && query.prefix->length() == 24)
    consider(IndexChoice::kSlash24,
             index.by_slash24(query.prefix->network().value()));
  if (query.asn) consider(IndexChoice::kAsn, index.by_asn(*query.asn));
  if (query.country)
    consider(IndexChoice::kCountry,
             index.by_country(pack_country(*query.country)));
  if (query.port) consider(IndexChoice::kPort, index.by_port(*query.port));
  return best;
}

QueryPlan Snapshot::plan(const Query& query) const {
  // Aggregate of the per-segment plans over the time-clipped segment
  // subset: candidates sum; the reported choice is the dominant segment's
  // (most candidates, earliest segment on ties). Cold segments are
  // estimated from archive metadata alone — segment bounds plus per-block
  // zone maps — so explain never pages anything in; their postings are
  // unknowable without loading, hence a scan-shaped estimate.
  QueryPlan total{IndexChoice::kFullScan, 0};
  std::uint64_t dominant = 0;
  bool any = false;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    if (query.time && !meta_[s].overlaps(query.time->begin, query.time->end))
      continue;
    QueryPlan part;
    if (segments_[s] != nullptr) {
      part = plan_segment(query, *segments_[s]);
    } else if (query.time) {
      const RowRange rows =
          cold_[s].provider->clip(cold_[s].id, query.time->begin,
                                  query.time->end);
      if (rows.size() == 0) continue;
      part = {IndexChoice::kTimeRange, rows.size()};
    } else {
      part = {IndexChoice::kFullScan, meta_[s].rows};
    }
    total.candidates += part.candidates;
    if (!any || part.candidates > dominant) {
      total.choice = part.choice;
      dominant = part.candidates;
      any = true;
    }
  }
  return total;
}

bool Snapshot::row_matches(const Query& query, const EventFrame& frame,
                           std::uint32_t row) {
  if (query.time && !(frame.start()[row] >= query.time->begin &&
                      frame.start()[row] < query.time->end))
    return false;
  if (!core::matches(query.source, frame.source_at(row))) return false;
  if (query.prefix &&
      (frame.target()[row] & query.prefix->mask()) !=
          query.prefix->network().value())
    return false;
  if (query.asn && frame.asn()[row] != *query.asn) return false;
  if (query.country &&
      frame.country()[row] != pack_country(*query.country))
    return false;
  if (query.port && frame.top_port()[row] != *query.port) return false;
  if (query.min_intensity && frame.intensity()[row] < *query.min_intensity)
    return false;
  return true;
}

template <typename Fn>
void Snapshot::for_each_match(const Query& query, const ExecBudget& budget,
                              Fn&& fn) const {
  QueryMetrics& metrics = QueryMetrics::get();
  BudgetState spent(budget);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    if (query.time && !meta_[s].overlaps(query.time->begin, query.time->end)) {
      metrics.segments_skipped.inc();
      continue;
    }
    // Cold slot + time filter: consult the zone maps before paging the
    // segment in. An empty clip proves no start can fall in the range
    // (possible even after the segment-level overlap check, when the range
    // lands in a gap between blocks), so the load is skipped entirely.
    if (segments_[s] == nullptr && query.time &&
        cold_[s]
                .provider->clip(cold_[s].id, query.time->begin,
                                query.time->end)
                .size() == 0) {
      metrics.segments_skipped.inc();
      continue;
    }
    std::shared_ptr<const FrameSegment> keep;
    const FrameSegment& seg = resolve(s, keep);
    metrics.segments_scanned.inc();
    const EventFrame& frame = seg.frame();
    const std::uint32_t base = bases_[s];
    const QueryPlan chosen = plan_segment(query, seg);
    metrics.record_exec(chosen.choice);
    RowRange time_rows{0, static_cast<std::uint32_t>(frame.size())};
    if (query.time)
      time_rows = seg.index().time_range(query.time->begin, query.time->end);

    const auto verify_postings = [&](std::span<const std::uint32_t> postings) {
      const auto clipped = clip(postings, time_rows);
      metrics.postings_clipped.add(postings.size() - clipped.size());
      for (const std::uint32_t row : clipped) {
        spent.visit();
        if (row_matches(query, frame, row)) {
          spent.charge_match();
          fn(frame, row, base + row);
        }
      }
    };
    switch (chosen.choice) {
      case IndexChoice::kFullScan:
        for (std::uint32_t row = 0; row < frame.size(); ++row) {
          spent.visit();
          if (row_matches(query, frame, row)) {
            spent.charge_match();
            fn(frame, row, base + row);
          }
        }
        break;
      case IndexChoice::kTimeRange:
        for (std::uint32_t row = time_rows.begin; row < time_rows.end; ++row) {
          spent.visit();
          if (row_matches(query, frame, row)) {
            spent.charge_match();
            fn(frame, row, base + row);
          }
        }
        break;
      case IndexChoice::kTarget32:
        verify_postings(seg.index().by_target(query.prefix->network().value()));
        break;
      case IndexChoice::kSlash24:
        verify_postings(
            seg.index().by_slash24(query.prefix->network().value()));
        break;
      case IndexChoice::kAsn:
        verify_postings(seg.index().by_asn(*query.asn));
        break;
      case IndexChoice::kCountry:
        verify_postings(seg.index().by_country(pack_country(*query.country)));
        break;
      case IndexChoice::kPort:
        verify_postings(seg.index().by_port(*query.port));
        break;
    }
  }
}

std::uint64_t Snapshot::count(const Query& query,
                              const ExecBudget& budget) const {
  std::uint64_t n = 0;
  for_each_match(query, budget,
                 [&](const EventFrame&, std::uint32_t, std::uint32_t) { ++n; });
  return n;
}

std::uint64_t Snapshot::unique_targets(const Query& query,
                                       const ExecBudget& budget) const {
  std::unordered_set<std::uint32_t> targets;
  for_each_match(query, budget,
                 [&](const EventFrame& frame, std::uint32_t row,
                     std::uint32_t) { targets.insert(frame.target()[row]); });
  return targets.size();
}

DailySeries Snapshot::daily_attacks(const Query& query,
                                    const ExecBudget& budget) const {
  DailySeries series(window_.num_days());
  for_each_match(query, budget, [&](const EventFrame& frame, std::uint32_t row,
                                    std::uint32_t) {
    const std::int32_t day = frame.day()[row];
    if (day >= 0) series.add(day, 1.0);
  });
  return series;
}

std::vector<TargetCount> Snapshot::top_targets(const Query& query,
                                               std::size_t k,
                                               const ExecBudget& budget) const {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for_each_match(query, budget,
                 [&](const EventFrame& frame, std::uint32_t row,
                     std::uint32_t) { ++counts[frame.target()[row]]; });
  std::vector<TargetCount> out;
  out.reserve(counts.size());
  for (const auto& [addr, events] : counts)
    out.push_back({net::Ipv4Addr(addr), events});
  std::sort(out.begin(), out.end(),
            [](const TargetCount& a, const TargetCount& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.target < b.target;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<AsnCount> Snapshot::top_asns(const Query& query, std::size_t k,
                                         const ExecBudget& budget) const {
  std::unordered_map<meta::Asn, std::unordered_set<std::uint32_t>> targets;
  std::unordered_map<meta::Asn, std::uint64_t> events;
  for_each_match(query, budget, [&](const EventFrame& frame, std::uint32_t row,
                                    std::uint32_t) {
    const meta::Asn asn = frame.asn()[row];
    if (asn == meta::kUnknownAsn) return;
    targets[asn].insert(frame.target()[row]);
    ++events[asn];
  });
  std::vector<AsnCount> out;
  out.reserve(targets.size());
  for (const auto& [asn, addrs] : targets)
    out.push_back({asn, addrs.size(), events[asn]});
  std::sort(out.begin(), out.end(), [](const AsnCount& a, const AsnCount& b) {
    return std::tuple(b.targets, b.events, a.asn) <
           std::tuple(a.targets, a.events, b.asn);
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<core::CountryCount> Snapshot::country_ranking(
    const Query& query, const ExecBudget& budget) const {
  // Packed codes order exactly like CountryCode (both compare the two ASCII
  // letters lexicographically), so sorting on the packed key reproduces the
  // EventStore tie-break. The first-seen dedup walks global row order, so
  // it is granularity-independent.
  std::unordered_set<std::uint32_t> seen;
  std::unordered_map<PackedCountry, std::uint64_t> counts;
  std::uint64_t total = 0;
  for_each_match(query, budget, [&](const EventFrame& frame, std::uint32_t row,
                                    std::uint32_t) {
    if (!seen.insert(frame.target()[row]).second) return;
    ++counts[frame.country()[row]];
    ++total;
  });
  std::vector<std::pair<PackedCountry, std::uint64_t>> entries(counts.begin(),
                                                               counts.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<core::CountryCount> out;
  out.reserve(entries.size());
  for (const auto& [packed, count] : entries) {
    out.push_back({unpack_country(packed), count,
                   total ? static_cast<double>(count) / static_cast<double>(total)
                         : 0.0});
  }
  return out;
}

std::vector<core::CountryCount> Snapshot::top_countries(
    const Query& query, std::size_t k, const ExecBudget& budget) const {
  auto ranking = country_ranking(query, budget);
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

std::vector<std::uint32_t> Snapshot::match_rows(const Query& query,
                                                const ExecBudget& budget) const {
  std::vector<std::uint32_t> rows;
  for_each_match(query, budget,
                 [&](const EventFrame&, std::uint32_t, std::uint32_t global) {
                   rows.push_back(global);
                 });
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace dosm::query
