// The concurrent serving layer: snapshot-swap publication.
//
// Readers call QueryEngine::snapshot() — a lock-free atomic load of a
// shared_ptr<const Snapshot> — and run any number of queries against the
// immutable snapshot they obtained; they never block and can never observe
// torn state, because published snapshots are never mutated. The streaming
// path (SnapshotPublisher) seals only the just-completed day into a new
// FrameSegment at every day boundary and publishes a snapshot whose segment
// list reuses every previously sealed segment by pointer — an O(new-day)
// publish. Readers holding an old snapshot keep it alive until they drop it.
//
// This is the §9 "near-realtime fusion, extraction, correlation" serving
// model: one writer, many ad-hoc query clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/streaming.h"
#include "query/build_context.h"
#include "query/event_frame.h"
#include "query/segment.h"
#include "query/snapshot.h"

namespace dosm::query {

class QueryEngine {
 public:
  /// Starts empty (snapshot() returns nullptr) or with an initial snapshot.
  explicit QueryEngine(std::shared_ptr<const Snapshot> initial = nullptr);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The current snapshot; lock-free, safe from any thread. May be null
  /// before the first publish.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Atomically replaces the served snapshot. Throws std::invalid_argument
  /// on a null snapshot or a version not greater than the current one
  /// (readers rely on versions to detect swaps).
  void publish(std::shared_ptr<const Snapshot> next);

  std::uint64_t publishes() const { return publishes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<std::uint64_t> publishes_{0};
};

/// Bridges time-ordered streaming ingest to snapshot publication. Mirrors
/// StreamingFusion's contract (non-decreasing start order, out-of-window
/// events ignored). Each completed day is sealed ONCE into an immutable
/// FrameSegment; the publish assembles a new segment list sharing all prior
/// segments by pointer, so publish cost is O(rows in the sealed day), not
/// O(all history) — while a reader still always sees a whole-day-consistent
/// dataset. The publisher always seals per completed day; ctx.segment_days
/// does not apply to the streaming path.
class SnapshotPublisher {
 public:
  /// The engine is borrowed and must outlive the publisher. The publisher
  /// keeps a copy of ctx, so the metadata ctx borrows must outlive the
  /// publisher too (see BuildContext).
  SnapshotPublisher(QueryEngine& engine, StudyWindow window,
                    const BuildContext& ctx);

  /// Ingests one event; throws std::invalid_argument when start order
  /// decreases. Seals + publishes whenever a day boundary is crossed.
  void ingest(const core::AttackEvent& event);

  /// Seals and publishes the final (possibly partial) day.
  void finish();

  std::uint64_t events_ingested() const { return events_ingested_; }
  std::uint64_t snapshots_published() const { return snapshots_published_; }
  /// Segments sealed so far == days completed (each sealed exactly once).
  std::size_t segments_sealed() const { return sealed_.size(); }

 private:
  void seal_and_publish();

  QueryEngine* engine_;
  StudyWindow window_;
  BuildContext ctx_;
  std::vector<std::shared_ptr<const FrameSegment>> sealed_;
  FrameBuilder day_builder_;
  int current_day_ = -1;
  double last_start_ = -1.0e300;
  std::uint64_t events_ingested_ = 0;
  std::uint64_t snapshots_published_ = 0;
  std::uint64_t next_version_ = 1;
};

}  // namespace dosm::query
