// The concurrent serving layer: snapshot-swap publication.
//
// Readers call QueryEngine::snapshot() — a lock-free atomic load of a
// shared_ptr<const Snapshot> — and run any number of queries against the
// immutable snapshot they obtained; they never block and can never observe
// torn state, because published snapshots are never mutated. The streaming
// path (SnapshotPublisher) rebuilds the frame + indexes off to the side at
// every day boundary and publishes the result with a single pointer swap.
// Readers holding an old snapshot keep it alive until they drop it.
//
// This is the §9 "near-realtime fusion, extraction, correlation" serving
// model: one writer, many ad-hoc query clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/streaming.h"
#include "query/event_frame.h"
#include "query/snapshot.h"

namespace dosm::query {

class QueryEngine {
 public:
  /// Starts empty (snapshot() returns nullptr) or with an initial snapshot.
  explicit QueryEngine(std::shared_ptr<const Snapshot> initial = nullptr);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The current snapshot; lock-free, safe from any thread. May be null
  /// before the first publish.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Atomically replaces the served snapshot. Throws std::invalid_argument
  /// on a null snapshot or a version not greater than the current one
  /// (readers rely on versions to detect swaps).
  void publish(std::shared_ptr<const Snapshot> next);

  std::uint64_t publishes() const { return publishes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<std::uint64_t> publishes_{0};
};

/// Bridges time-ordered streaming ingest to snapshot publication. Mirrors
/// StreamingFusion's contract (non-decreasing start order, out-of-window
/// events ignored); each completed day triggers a rebuild of the full frame
/// and a publish, so a reader always sees a whole-day-consistent dataset.
class SnapshotPublisher {
 public:
  /// The engine and metadata are borrowed and must outlive the publisher.
  SnapshotPublisher(QueryEngine& engine, StudyWindow window,
                    const meta::PrefixToAsMap& pfx2as,
                    const meta::GeoDatabase& geo);

  /// Ingests one event; throws std::invalid_argument when start order
  /// decreases. Publishes a snapshot whenever a day boundary is crossed.
  void ingest(const core::AttackEvent& event);

  /// Publishes the final (possibly partial) day.
  void finish();

  /// Worker threads used for each snapshot rebuild (default 1). Any value
  /// yields byte-identical snapshots; see FrameBuilder::build(int).
  void set_build_threads(int threads) { build_threads_ = threads; }
  int build_threads() const { return build_threads_; }

  std::uint64_t events_ingested() const { return events_ingested_; }
  std::uint64_t snapshots_published() const { return snapshots_published_; }

 private:
  void publish_now();

  QueryEngine* engine_;
  StudyWindow window_;
  FrameBuilder builder_;
  int build_threads_ = 1;
  int current_day_ = -1;
  double last_start_ = -1.0e300;
  std::uint64_t events_ingested_ = 0;
  std::uint64_t snapshots_published_ = 0;
  std::uint64_t next_version_ = 1;
};

}  // namespace dosm::query
