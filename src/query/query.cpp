#include "query/query.h"

#include <sstream>

namespace dosm::query {

std::string to_string(const Query& query) {
  std::ostringstream out;
  const char* sep = "";
  auto field = [&](const std::string& text) {
    out << sep << text;
    sep = " AND ";
  };
  if (query.time) {
    std::ostringstream t;
    t << "start in [" << query.time->begin << ", " << query.time->end << ")";
    field(t.str());
  }
  if (query.source != core::SourceFilter::kCombined)
    field("source = " + core::to_string(query.source));
  if (query.prefix) field("target in " + query.prefix->to_string());
  if (query.asn) field("asn = " + std::to_string(*query.asn));
  if (query.country) field("country = " + query.country->to_string());
  if (query.port) field("port = " + std::to_string(*query.port));
  if (query.min_intensity) {
    std::ostringstream t;
    t << "intensity >= " << *query.min_intensity;
    field(t.str());
  }
  if (sep[0] == '\0') return "(all events)";
  return out.str();
}

std::string to_string(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kFullScan:
      return "full-scan";
    case IndexChoice::kTimeRange:
      return "time-range";
    case IndexChoice::kTarget32:
      return "target-/32";
    case IndexChoice::kSlash24:
      return "target-/24";
    case IndexChoice::kAsn:
      return "asn";
    case IndexChoice::kCountry:
      return "country";
    case IndexChoice::kPort:
      return "port";
  }
  return "unknown";
}

std::string to_string(const QueryPlan& plan) {
  return to_string(plan.choice) + " (" + std::to_string(plan.candidates) +
         " candidate rows)";
}

}  // namespace dosm::query
