#include "query/query.h"

#include <bit>
#include <sstream>

#include "common/sanitize.h"

namespace dosm::query {
namespace {

/// FNV-1a-64 over explicitly little-endian byte sequences: byte-for-byte
/// identical on every platform. Wraparound is the algorithm.
struct CanonicalHasher {
  std::uint64_t state = 14695981039346656037ull;

  DOSM_ALLOW_UNSIGNED_WRAP void byte(std::uint8_t b) {
    state ^= b;
    state *= 1099511628211ull;
  }
  void u16(std::uint16_t v) {
    byte(static_cast<std::uint8_t>(v & 0xff));
    byte(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      byte(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      byte(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
};

}  // namespace

std::uint64_t Query::cache_key() const {
  // Each field folds a distinct tag byte, a presence byte, and (when
  // present) its value, so absent-vs-default and field-vs-field never
  // alias. Field order is fixed forever; new fields append new tags.
  CanonicalHasher h;
  h.byte(0x01);
  h.byte(time ? 1 : 0);
  if (time) {
    h.f64(time->begin);
    h.f64(time->end);
  }
  h.byte(0x02);
  h.byte(static_cast<std::uint8_t>(source));
  h.byte(0x03);
  h.byte(prefix ? 1 : 0);
  if (prefix) {
    h.u32(prefix->network().value());
    h.byte(static_cast<std::uint8_t>(prefix->length()));
  }
  h.byte(0x04);
  h.byte(asn ? 1 : 0);
  if (asn) h.u32(*asn);
  h.byte(0x05);
  h.byte(country ? 1 : 0);
  if (country) {
    const std::string code = country->to_string();
    h.byte(static_cast<std::uint8_t>(code[0]));
    h.byte(static_cast<std::uint8_t>(code[1]));
  }
  h.byte(0x06);
  h.byte(port ? 1 : 0);
  if (port) h.u16(*port);
  h.byte(0x07);
  h.byte(min_intensity ? 1 : 0);
  if (min_intensity) h.f64(*min_intensity);
  return h.state;
}

std::string to_string(const Query& query) {
  std::ostringstream out;
  const char* sep = "";
  auto field = [&](const std::string& text) {
    out << sep << text;
    sep = " AND ";
  };
  if (query.time) {
    std::ostringstream t;
    t << "start in [" << query.time->begin << ", " << query.time->end << ")";
    field(t.str());
  }
  if (query.source != core::SourceFilter::kCombined)
    field("source = " + core::to_string(query.source));
  if (query.prefix) field("target in " + query.prefix->to_string());
  if (query.asn) field("asn = " + std::to_string(*query.asn));
  if (query.country) field("country = " + query.country->to_string());
  if (query.port) field("port = " + std::to_string(*query.port));
  if (query.min_intensity) {
    std::ostringstream t;
    t << "intensity >= " << *query.min_intensity;
    field(t.str());
  }
  if (sep[0] == '\0') return "(all events)";
  return out.str();
}

std::string to_string(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kFullScan:
      return "full-scan";
    case IndexChoice::kTimeRange:
      return "time-range";
    case IndexChoice::kTarget32:
      return "target-/32";
    case IndexChoice::kSlash24:
      return "target-/24";
    case IndexChoice::kAsn:
      return "asn";
    case IndexChoice::kCountry:
      return "country";
    case IndexChoice::kPort:
      return "port";
  }
  return "unknown";
}

std::string to_string(const QueryPlan& plan) {
  return to_string(plan.choice) + " (" + std::to_string(plan.candidates) +
         " candidate rows)";
}

}  // namespace dosm::query
