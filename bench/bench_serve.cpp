// Query-server bench: closed-loop load against `dosm_serve` over loopback
// TCP, measuring sustained QPS and latency percentiles for the cached
// dashboard workload (the repeated cross-vantage comparison queries a
// version-keyed cache should absorb between daily publishes).
//
// Before any timing runs, an identity check replays every workload query
// against (a) a 1-worker cache-disabled server and (b) an 8-worker cached
// server (twice: cold then cached) and requires ALL raw response bytes to
// be identical — the serve determinism contract, enforced here so a timing
// number can never come from a server that answers wrong.
//
// Emits BENCH_serve.json (QPS, p50/p99, per-endpoint mix) and fails when
// the default-size run sustains < 10k QPS on cached queries.
//
//   $ ./bench_serve [--smoke] [--out FILE]
//     --smoke   small world + short measurement (CI wiring check; the
//               10k-QPS gate only applies to the default size)
//     --out F   baseline path (default BENCH_serve.json)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "serve/server.h"

namespace {

using namespace dosm;
using clock_type = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution

// ---------------------------------------------------------------------------
// Minimal blocking HTTP client (loopback only).
// ---------------------------------------------------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("connect() failed");
  }
  return fd;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) throw std::runtime_error("send() failed");
    sent += static_cast<std::size_t>(n);
  }
}

/// Sends one keep-alive GET and reads exactly one full response (raw bytes,
/// headers included). The connection stays usable for the next request.
std::string fetch(int fd, const std::string& path) {
  send_all(fd, "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n");
  std::string response;
  char chunk[8192];
  std::size_t need = std::string::npos;
  for (;;) {
    if (need == std::string::npos) {
      const std::size_t head_end = response.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t field = response.find("Content-Length: ");
        if (field == std::string::npos || field > head_end)
          throw std::runtime_error("response without Content-Length");
        std::size_t length = 0;
        const char* begin = response.data() + field + 16;
        const auto [ptr, ec] =
            std::from_chars(begin, response.data() + head_end, length);
        if (ec != std::errc{}) throw std::runtime_error("bad Content-Length");
        (void)ptr;
        need = head_end + 4 + length;
      }
    }
    if (need != std::string::npos && response.size() >= need)
      return response.substr(0, need);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) throw std::runtime_error("recv() failed mid-response");
    response.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Workload + measurement.
// ---------------------------------------------------------------------------

/// The dashboard mix: the aggregations a monitoring frontend refreshes on
/// every view, all cacheable (no free-text variance, fixed k).
std::vector<std::pair<std::string, std::string>> dashboard_queries() {
  return {
      {"summary", "/query?agg=summary"},
      {"daily", "/query?agg=daily"},
      {"top_targets", "/query?agg=top-targets&k=10"},
      {"top_asns", "/query?agg=top-asns&k=10"},
      {"top_countries", "/query?agg=top-countries&k=10"},
      {"telescope_summary", "/query?agg=summary&source=telescope"},
      {"honeypot_summary", "/query?agg=summary&source=honeypot"},
      {"health", "/healthz"},
  };
}

struct LoadResult {
  std::uint64_t requests = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Closed-loop load: each client thread owns one keep-alive connection and
/// cycles through the query mix for `duration_s`, recording per-request
/// latency. QPS = total completed requests / wall time.
LoadResult run_load(std::uint16_t port, std::size_t clients,
                    double duration_s) {
  const auto queries = dashboard_queries();
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto begin = clock_type::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = connect_to(port);
      std::size_t next = c;  // stagger the mix across clients
      auto& lat = latencies[c];
      lat.reserve(65536);
      while (std::chrono::duration<double>(clock_type::now() - begin)
                 .count() < duration_s) {
        const auto t0 = clock_type::now();
        const std::string response =
            fetch(fd, queries[next % queries.size()].second);
        const auto t1 = clock_type::now();
        if (response.compare(0, 12, "HTTP/1.1 200") != 0)
          throw std::runtime_error("non-200 under load: " +
                                   response.substr(0, 32));
        lat.push_back(std::chrono::duration<double>(t1 - t0).count() * 1e6);
        ++counts[c];
        ++next;
      }
      ::close(fd);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock_type::now() - begin).count();

  LoadResult result;
  result.elapsed_s = elapsed;
  std::vector<double> all;
  for (std::size_t c = 0; c < clients; ++c) {
    result.requests += counts[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  result.qps = static_cast<double>(result.requests) / elapsed;
  if (!all.empty()) {
    result.p50_us = all[all.size() / 2];
    result.p99_us = all[(all.size() * 99) / 100 < all.size()
                            ? (all.size() * 99) / 100
                            : all.size() - 1];
  }
  return result;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_serve [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  sim::ScenarioConfig config = bench::default_config();
  if (smoke) config = sim::ScenarioConfig::small();
  bench::print_header(
      "Query server: cached dashboard QPS over loopback HTTP",
      "serving-layer addition; no paper table — baseline for "
      "BENCH_serve.json");
  std::cerr << "[bench] building " << config.window.num_days()
            << "-day world...\n";
  const auto world = sim::build_world(config);
  const query::BuildContext ctx{world->population.pfx2as(),
                                world->population.geo()};
  query::QueryEngine engine;
  engine.publish(query::Snapshot::from_store(world->store, ctx, 1));
  std::cerr << "[bench] snapshot ready: " << engine.snapshot()->size()
            << " events\n";

  const auto queries = dashboard_queries();

  // --- Identity check (must pass before any timing) --------------------
  // 1 worker + no cache vs 8 workers + cache (cold, then warm): every raw
  // response — headers and body — must be byte-identical.
  {
    serve::ServerConfig plain;
    plain.workers = 1;
    plain.cache_bytes = 0;
    const serve::Server server_plain(plain, engine);

    serve::ServerConfig cached;
    cached.workers = 8;
    const serve::Server server_cached(cached, engine);

    const int fd_plain = connect_to(server_plain.port());
    const int fd_cached = connect_to(server_cached.port());
    for (const auto& [name, path] : queries) {
      const std::string reference = fetch(fd_plain, path);
      const std::string cold = fetch(fd_cached, path);
      const std::string warm = fetch(fd_cached, path);
      if (reference != cold || reference != warm) {
        std::cerr << "bench_serve: identity check FAILED on " << name
                  << " (1-worker/uncached vs 8-worker cold/cached)\n";
        return 1;
      }
    }
    ::close(fd_plain);
    ::close(fd_cached);
    std::cout << "identity check: " << queries.size()
              << " queries byte-identical across worker counts and cache "
                 "states\n";
  }

  // --- Timed load ------------------------------------------------------
  serve::ServerConfig cfg;
  cfg.workers = 8;
  const serve::Server server(cfg, engine);
  const std::size_t clients = smoke ? 2 : 8;
  const double duration_s = smoke ? 0.3 : 3.0;

  // Warm the cache so the measurement is the cached dashboard workload.
  {
    const int fd = connect_to(server.port());
    for (const auto& [name, path] : queries) fetch(fd, path);
    ::close(fd);
  }
  const LoadResult load = run_load(server.port(), clients, duration_s);

  TextTable table({"metric", "value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"workers", std::to_string(cfg.workers)});
  table.add_row({"requests", std::to_string(load.requests)});
  table.add_row({"elapsed_s", fixed(load.elapsed_s, 2)});
  table.add_row({"qps", fixed(load.qps, 0)});
  table.add_row({"p50_us", fixed(load.p50_us, 1)});
  table.add_row({"p99_us", fixed(load.p99_us, 1)});
  std::cout << table;

  bench::JsonValue root;
  root.set("bench", "serve")
      .set("smoke", smoke)
      .set("events", static_cast<std::uint64_t>(engine.snapshot()->size()))
      .set("days", static_cast<std::uint64_t>(config.window.num_days()))
      .set("seed", static_cast<std::uint64_t>(config.seed))
      .set("identity_check", true)
      .set("clients", static_cast<std::uint64_t>(clients))
      .set("workers", static_cast<std::uint64_t>(cfg.workers))
      .set("queries_in_mix", static_cast<std::uint64_t>(queries.size()))
      .set("requests", load.requests)
      .set("elapsed_s", load.elapsed_s)
      .set("qps", load.qps)
      .set("p50_us", load.p50_us)
      .set("p99_us", load.p99_us);
  bench::write_json(out_path, root);

  if (!smoke && load.qps < 10000.0) {
    std::cerr << "bench_serve: " << fixed(load.qps, 0)
              << " QPS is below the 10k cached-dashboard baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_serve: " << e.what() << "\n";
  return 1;
}
