// §8 extension — impact of DoS on mail infrastructure. The paper observes
// that heavily shared mail exchangers (GoDaddy's serve tens of millions of
// domains) are frequently attacked and proposes this analysis as future
// work; the model gives hosted domains shared MX hosts so the join can run.
#include "bench_common.h"
#include "core/mail_impact.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Mail-infrastructure impact (§8 future work, implemented)",
      "MX hosts of large hosters are frequently targeted; impact on mail "
      "delivery parallels the Web-impact analysis");

  const auto& world = bench::shared_world();
  const core::MailImpactAnalysis mail(world.store, world.dns);

  std::cout << "Domains publishing MX records: " << mail.mail_domains()
            << " of " << world.dns.num_domains() << "\n";
  std::cout << "Domains whose mail host was ever attacked: "
            << mail.affected_domains() << " ("
            << percent(mail.affected_fraction(), 1) << ")\n";
  std::cout << "Average affected per day: "
            << fixed(mail.affected_daily().daily_mean(), 0) << " domains\n";
  std::cout << "Attacked IPs serving mail: " << mail.mail_hosting_targets()
            << "\n\n";

  TextTable table({"mail exchanger", "hoster", "domain-involvements"});
  for (const auto& [ip, involvements] : mail.top_mail_targets(8)) {
    const int h = world.hosting.hoster_of_ip(ip);
    table.add_row({ip.to_string(),
                   h >= 0 ? world.hosting.hosters()[static_cast<std::size_t>(h)].name
                          : "(self-hosted)",
                   human_count(double(involvements))});
  }
  std::cout << table;

  // The paper's observation: the top mail targets are the big hosters'
  // shared exchangers.
  const auto top = mail.top_mail_targets(3);
  bool top_is_shared = !top.empty();
  for (const auto& [ip, involvements] : top)
    top_is_shared &= world.hosting.hoster_of_ip(ip) >= 0;
  std::cout << "\nShape: top mail targets are shared hoster exchangers: "
            << (top_is_shared ? "holds" : "VIOLATED") << "\n";
  return 0;
}
