// §6 bounding-problem check: attacks overlapping the edges of the
// observation window can be misclassified (preexisting customers that
// actually migrated just before the window; non-migrating sites that
// migrate just after). The paper verifies robustness by shortening the
// attack data by one month on either end and re-running the taxonomy; the
// class distribution must move only negligibly.
#include <cmath>

#include "bench_common.h"
#include "core/taxonomy.h"
#include "dps/classifier.h"

namespace {

dosm::core::TaxonomyCounts taxonomy_with_clipped_attacks(
    const dosm::sim::World& world, int clip_days) {
  using namespace dosm;
  core::EventStore clipped(world.window);
  const double lo =
      static_cast<double>(world.window.day_start(clip_days));
  const double hi = static_cast<double>(
      world.window.day_start(world.window.num_days() - clip_days));
  for (const auto& event : world.store.events()) {
    if (event.start >= lo && event.start < hi) clipped.add(event);
  }
  clipped.finalize();

  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const core::ImpactAnalysis impact(clipped, world.dns);
  return core::classify_websites(impact, timelines, world.dns);
}

}  // namespace

int main() {
  using namespace dosm;
  bench::print_header(
      "Bounding-problem check (§6)",
      "shortening the attack data by one month on either end has a "
      "negligible effect on the Web-site class distribution");

  const auto& world = bench::shared_world();
  const auto full = taxonomy_with_clipped_attacks(world, 0);
  const auto clipped = taxonomy_with_clipped_attacks(world, 30);

  auto pct = [](std::uint64_t a, std::uint64_t b) {
    return b ? 100.0 * double(a) / double(b) : 0.0;
  };
  struct Row {
    const char* label;
    double full_pct;
    double clipped_pct;
  };
  const Row rows[] = {
      {"attacked share", pct(full.attacked, full.total),
       pct(clipped.attacked, clipped.total)},
      {"attacked & preexisting", pct(full.attacked_preexisting, full.attacked),
       pct(clipped.attacked_preexisting, clipped.attacked)},
      {"attacked & migrating", pct(full.attacked_migrating, full.attacked),
       pct(clipped.attacked_migrating, clipped.attacked)},
      {"unattacked & preexisting",
       pct(full.not_attacked_preexisting, full.not_attacked),
       pct(clipped.not_attacked_preexisting, clipped.not_attacked)},
      {"unattacked & migrating",
       pct(full.not_attacked_migrating, full.not_attacked),
       pct(clipped.not_attacked_migrating, clipped.not_attacked)},
  };

  TextTable table({"class", "full window", "clipped 1 month/side", "delta"});
  double max_delta = 0.0;
  for (const auto& row : rows) {
    const double delta = row.clipped_pct - row.full_pct;
    max_delta = std::max(max_delta, std::fabs(delta));
    table.add_row({row.label, fixed(row.full_pct, 2) + "%",
                   fixed(row.clipped_pct, 2) + "%",
                   fixed(delta, 2) + "pp"});
  }
  std::cout << table;
  std::cout << "\nLargest shift: " << fixed(max_delta, 2)
            << "pp -> misclassification at the window edges is "
            << (max_delta < 3.0 ? "negligible (matches the paper's check)"
                                : "NOT negligible")
            << "\n";
  return 0;
}
