// Table 1 — DoS attack events data: events / unique targets / /24s / /16s /
// ASNs per source and combined, over the two-year window.
#include "bench_common.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Table 1: DoS attack events data (2015-03-01 .. 2017-02-28)",
      "telescope 12.47M events/2.45M targets/0.77M /24s; honeypot 8.43M/"
      "4.18M/1.72M; combined 20.90M events, 2.19M /24s (~1/3 of active /24s)");

  const auto& world = bench::shared_world();
  const auto& pfx2as = world.population.pfx2as();

  TextTable table({"source", "#events", "#targets", "#/24s", "#/16s", "#ASNs",
                   "events/target"});
  struct PaperRow {
    const char* name;
    double events, targets, s24;
  };
  const PaperRow paper[] = {
      {"paper: Network Telescope", 12.47e6, 2.45e6, 0.77e6},
      {"paper: Amplification Honeypot", 8.43e6, 4.18e6, 1.72e6},
      {"paper: Combined", 20.90e6, 6.34e6, 2.19e6},
  };
  const core::SourceFilter filters[] = {core::SourceFilter::kTelescope,
                                        core::SourceFilter::kHoneypot,
                                        core::SourceFilter::kCombined};
  for (int i = 0; i < 3; ++i) {
    const auto summary = world.store.summarize(filters[i], pfx2as);
    table.add_row(
        {core::to_string(filters[i]), human_count(double(summary.events)),
         human_count(double(summary.unique_targets)),
         human_count(double(summary.unique_slash24)),
         human_count(double(summary.unique_slash16)),
         human_count(double(summary.unique_asns)),
         fixed(summary.unique_targets
                   ? double(summary.events) / double(summary.unique_targets)
                   : 0.0,
               2)});
    table.add_row({paper[i].name, human_count(paper[i].events),
                   human_count(paper[i].targets), human_count(paper[i].s24),
                   "-", "-",
                   fixed(paper[i].events / paper[i].targets, 2)});
  }
  std::cout << table;

  // Shape checks the paper emphasizes: the telescope has more events per
  // target (follow-up attacks), the honeypot more unique targets; the
  // combined target set is sub-additive (overlap, §4).
  const auto telescope = world.store.summarize(core::SourceFilter::kTelescope, pfx2as);
  const auto honeypot = world.store.summarize(core::SourceFilter::kHoneypot, pfx2as);
  const auto combined = world.store.summarize(core::SourceFilter::kCombined, pfx2as);
  const double events_per_target_t =
      double(telescope.events) / double(telescope.unique_targets);
  const double events_per_target_h =
      double(honeypot.events) / double(honeypot.unique_targets);
  std::cout << "\nShape: events/target telescope " << fixed(events_per_target_t, 2)
            << " vs honeypot " << fixed(events_per_target_h, 2)
            << (events_per_target_t > events_per_target_h
                    ? "  [matches paper: telescope higher]"
                    : "  [MISMATCH: paper has telescope higher]")
            << "\n";
  const auto overlap = telescope.unique_targets + honeypot.unique_targets -
                       combined.unique_targets;
  std::cout << "Target overlap between datasets: " << overlap << " ("
            << percent(double(overlap) / double(combined.unique_targets), 2)
            << " of combined; paper: 282k of 6.34M = 4.4%)\n";
  return 0;
}
