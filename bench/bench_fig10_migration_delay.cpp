// Figure 10 — days-to-migration CDFs per attack-intensity class: intensity
// sharply accelerates migration to a DPS.
#include "bench_common.h"
#include "core/migration_analysis.h"
#include "dps/classifier.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 10: migration delay by attack intensity",
      "within 6 days: all 29.9%, top 5% 67.1%, top 1% 77.1%, top 0.1% 98.6%; "
      "within 1 day: all 23.2% vs top 0.1% 80.7%");

  const auto& world = bench::shared_world();
  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const core::ImpactAnalysis impact(world.store, world.dns);
  const core::MigrationAnalysis migration(impact, timelines);

  struct Class {
    const char* label;
    double top_fraction;
    double paper_within6;
  };
  const Class classes[] = {{"All", 1.0, 0.299},
                           {"Top 5%", 0.05, 0.671},
                           {"Top 1%", 0.01, 0.771},
                           {"Top 0.1%", 0.001, 0.986}};

  TextTable table({"class", "sites", "<=1d", "<=3d", "<=6d", "<=16d",
                   "paper <=6d"});
  std::vector<double> within6;  // only classes large enough to be meaningful
  for (const auto& c : classes) {
    const auto delays = migration.delays_for_intensity_class(c.top_fraction);
    if (delays.empty()) {
      table.add_row({c.label, "0", "-", "-", "-", "-", percent(c.paper_within6, 1)});
      continue;
    }
    // Classes under 10 sites are pure small-sample noise at this scale
    // (the paper's top 0.1% covers thousands of sites at 210M domains).
    if (delays.size() >= 10) within6.push_back(delays.cdf(6));
    table.add_row({c.label, std::to_string(delays.size()),
                   percent(delays.cdf(1), 1), percent(delays.cdf(3), 1),
                   percent(delays.cdf(6), 1), percent(delays.cdf(16), 1),
                   percent(c.paper_within6, 1)});
  }
  std::cout << table;

  bool monotone = true;
  for (std::size_t i = 1; i < within6.size(); ++i)
    if (within6[i] + 1e-9 < within6[i - 1]) monotone = false;
  std::cout << "\nShape: urgency grows with intensity class (CDF@6d monotone "
            << "across classes with >=10 sites): "
            << (monotone ? "holds" : "VIOLATED") << "\n";
  const auto all = migration.delays_for_intensity_class(1.0);
  const auto top = migration.delays_for_intensity_class(0.001);
  if (!all.empty() && !top.empty()) {
    std::cout << "Within-1-day contrast: all " << percent(all.cdf(1), 1)
              << " vs top 0.1% " << percent(top.cdf(1), 1)
              << " (paper: 23.2% vs 80.7%)\n";
  }
  return 0;
}
