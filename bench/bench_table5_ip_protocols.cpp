// Table 5 — IP protocol distribution of randomly-spoofed attacks.
#include "bench_common.h"
#include "core/ports.h"

int main() {
  using namespace dosm;
  bench::print_header("Table 5: IP protocol distribution (telescope)",
                      "TCP 79.4%, UDP 15.9%, ICMP 4.5%, Other 0.2%");

  const auto& world = bench::shared_world();
  const auto rows = core::ip_protocol_distribution(world.store);
  const std::map<std::string, double> paper{
      {"TCP", 0.794}, {"UDP", 0.159}, {"ICMP", 0.045}, {"Other", 0.002}};

  TextTable table({"protocol", "#events", "share", "paper share", "delta"});
  for (const auto& row : rows) {
    const double expected = paper.at(row.label);
    table.add_row({row.label, human_count(double(row.events)),
                   percent(row.share, 1), percent(expected, 1),
                   fixed((row.share - expected) * 100.0, 2) + "pp"});
  }
  std::cout << table;
  std::cout << "\nShape: ordering TCP > UDP > ICMP > Other: "
            << ((rows[0].share > rows[1].share && rows[1].share > rows[2].share &&
                 rows[2].share > rows[3].share)
                    ? "holds"
                    : "VIOLATED")
            << "\n";
  return 0;
}
