// Figure 3 — intensity distribution of telescope events (max backscatter
// packets/sec in any minute; x256 estimates the rate at the victim).
#include "bench_common.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 3: telescope intensity CDF",
      "~70% of attacks <= ~2 pps at the telescope (512 pps at victim); ~17% "
      "> 10 pps; mean 107, median 1");

  const auto& world = bench::shared_world();
  const auto dist =
      world.store.intensity_distribution(core::SourceFilter::kTelescope);

  TextTable table({"pps (max, at telescope)", "x256 at victim", "CDF"});
  for (const double x : {0.5, 1.0, 2.0, 5.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    table.add_row({fixed(x, 1), human_count(x * 256.0, 0),
                   percent(dist.cdf(x), 1)});
  }
  std::cout << table;
  std::cout << "\nmean " << fixed(dist.mean(), 1) << " (paper 107), median "
            << fixed(dist.median(), 2) << " (paper 1)\n";
  std::cout << "Share above 10 pps: " << percent(1.0 - dist.cdf(10.0), 1)
            << " (paper ~17%)\n";
  std::cout << "Shape: steep low-end curve with a many-decade tail: "
            << (dist.cdf(2.0) > 0.5 && dist.max() > 1000.0 ? "holds"
                                                           : "VIOLATED")
            << "\n";
  return 0;
}
