// §4 joint attacks — targets hit by both randomly-spoofed and reflection
// attacks simultaneously, with the paper's distribution shifts.
#include "bench_common.h"
#include "core/joint.h"
#include "core/ports.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Joint attacks (§4)",
      "282k common targets, 137k hit simultaneously; joint attacks: 77.1% "
      "single-port, 27015/UDP at 53%, HTTP 50.23%, NTP up to 47.0%, CharGen "
      "halved to 11.5%; OVH is the top joint-target AS (12.3%)");

  const auto& world = bench::shared_world();
  const core::JointAttackAnalysis joint(world.store);
  const auto& pfx2as = world.population.pfx2as();
  const auto combined =
      world.store.summarize(core::SourceFilter::kCombined, pfx2as);

  std::cout << "common targets: " << joint.common_targets() << " ("
            << percent(double(joint.common_targets()) /
                           double(combined.unique_targets),
                       1)
            << " of all targets; paper 282k/6.34M = 4.4%)\n";
  std::cout << "joint (simultaneous) targets: " << joint.joint_targets() << " ("
            << percent(double(joint.joint_targets()) /
                           double(std::max<std::uint64_t>(joint.common_targets(), 1)),
                       1)
            << " of common; paper 137k/282k = 48.6%)\n\n";

  // Distribution shifts.
  const auto all_split = core::port_cardinality(world.store.events());
  const auto joint_split = core::port_cardinality(joint.telescope_joint_events());
  TextTable shifts({"statistic", "all", "joint", "paper all", "paper joint"});
  shifts.add_row({"single-port share", percent(all_split.single_share(), 1),
                  percent(joint_split.single_share(), 1), "60.6%", "77.1%"});

  const auto all_tcp = core::service_distribution(world.store.events(), true, 1);
  const auto joint_tcp =
      core::service_distribution(joint.telescope_joint_events(), true, 1);
  shifts.add_row({"HTTP share (TCP)", percent(all_tcp[0].share, 2),
                  joint_tcp.empty() ? "n/a" : percent(joint_tcp[0].share, 2),
                  "48.68%", "50.23%"});

  const auto all_udp = core::service_distribution(world.store.events(), false, 1);
  const auto joint_udp =
      core::service_distribution(joint.telescope_joint_events(), false, 1);
  shifts.add_row({"27015 share (UDP)", percent(all_udp[0].share, 2),
                  joint_udp.empty() ? "n/a" : percent(joint_udp[0].share, 2),
                  "18.54%", "53%"});
  std::cout << shifts;

  // Reflection-protocol shift among joint honeypot events.
  std::map<amppot::ReflectionProtocol, std::uint64_t> joint_reflection;
  std::uint64_t joint_total = 0;
  for (const auto& event : joint.honeypot_joint_events()) {
    ++joint_reflection[event.reflection];
    ++joint_total;
  }
  if (joint_total > 0) {
    std::cout << "\nReflection mix in joint attacks: NTP "
              << percent(double(joint_reflection[amppot::ReflectionProtocol::kNtp]) /
                             double(joint_total),
                         1)
              << " (paper 47.0%), CharGen "
              << percent(double(joint_reflection[amppot::ReflectionProtocol::kCharGen]) /
                             double(joint_total),
                         1)
              << " (paper 11.5%, halved)\n";
  }

  // Joint-target AS & country rankings.
  std::cout << "\nTop joint-target ASes (paper: OVH 12.3%, China Telecom "
               "5.4%, China Unicom 3.1%):\n";
  const auto asns = joint.asn_ranking(pfx2as);
  for (std::size_t i = 0; i < std::min<std::size_t>(3, asns.size()); ++i) {
    std::cout << "  " << (i + 1) << ". "
              << world.population.as_registry().name(asns[i].asn) << "  "
              << asns[i].targets << " targets (" << percent(asns[i].share, 1)
              << ")\n";
  }
  std::cout << "Top joint-target countries (paper: US 24.4%, CN 20.4%, FR "
               "9.5%, DE 6.5%, RU 4.1%):\n";
  const auto countries = joint.country_ranking(world.population.geo());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, countries.size()); ++i) {
    std::cout << "  " << (i + 1) << ". " << countries[i].country.to_string()
              << "  " << percent(countries[i].share, 1) << "\n";
  }
  return 0;
}
