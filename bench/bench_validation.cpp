// Detector validation on the full-window world: recall by intensity decade,
// attribute fidelity, and migration-detection scoring. Ground truth is used
// only here — the reproduction benches never touch it.
#include "bench_common.h"
#include "sim/validation.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Detector validation (ground truth used for scoring only)",
      "the Moore thresholds trade recall for precision; honeypots catch "
      "nearly everything above the request threshold");

  const auto& world = bench::shared_world();
  const auto validation = sim::validate_detectors(world);

  std::cout << "direct attacks:     " << validation.direct_attacks
            << " ground truth, " << validation.direct_detected << " detected ("
            << percent(validation.direct_recall(), 1) << ")\n";
  std::cout << "reflection attacks: " << validation.reflection_attacks
            << " ground truth, " << validation.reflection_detected
            << " detected (" << percent(validation.reflection_recall(), 1)
            << ")\n\n";

  TextTable table({"ground-truth rate", "telescope recall", "honeypot recall"});
  for (std::size_t i = 0; i < validation.telescope_by_intensity.size(); ++i) {
    const auto& telescope = validation.telescope_by_intensity[i];
    const auto& honeypot = validation.honeypot_by_intensity[i];
    table.add_row(
        {fixed(telescope.lo, 2) + " - " + fixed(telescope.hi, 2),
         telescope.attacks ? percent(telescope.recall(), 1) + " (" +
                                 std::to_string(telescope.attacks) + ")"
                           : "-",
         honeypot.attacks ? percent(honeypot.recall(), 1) + " (" +
                                std::to_string(honeypot.attacks) + ")"
                          : "-"});
  }
  std::cout << table;
  std::cout << "(telescope rate: backscatter pps at the telescope; honeypot "
               "rate: requests/sec per reflector)\n\n";

  std::cout << "attribute fidelity on " << validation.matched_events
            << " unambiguous matches: median duration error "
            << percent(validation.duration_relative_error, 1)
            << ", median max-pps error "
            << percent(validation.intensity_relative_error, 1) << "\n";

  const auto migration = sim::validate_migration_detection(world);
  std::cout << "\nmigration detection: " << migration.detected << "/"
            << migration.ground_truth << " ground-truth DNS changes re-found ("
            << percent(migration.recall(), 1) << "), " << migration.date_exact
            << " with the exact day\n";
  return 0;
}
