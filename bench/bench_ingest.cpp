// Batched ingest bench: BatchedPcapReader + SPSC ring versus the sequential
// per-packet PcapReader loop, over a synthetic telescope capture.
//
// Emits BENCH_ingest.json — the machine-readable baseline CI tracks. Before
// any timing, every measured (batch_frames, ring_capacity) configuration is
// cross-checked record-by-record against the sequential reader: a identity
// divergence fails the bench before a single throughput number is reported.
//
//   $ ./bench_ingest [--smoke] [--out FILE]
//     --smoke   tiny capture + short measurement (CI wiring check; the
//               >=3x throughput gate only applies at the default size)
//     --out F   baseline path (default BENCH_ingest.json)
//
// The throughput gate additionally requires >= 2 hardware threads; the
// batched front end overlaps capture with decode on separate cores, and a
// 1-core machine serializes the two stages, so (as with bench_parallel's
// speedup gate) the gate is recorded as skipped rather than failed there.
//
// Both paths read from an in-memory streambuf that exposes the encoded
// capture without copying it, so the comparison isolates the reader
// architecture (per-record istream reads + per-frame allocation vs chunked
// reads + arena slicing + pipelined decode) rather than buffer management
// of the fixture itself.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "ingest/pipeline.h"
#include "net/pcap.h"
#include "parallel/workload.h"

namespace {

using namespace dosm;

struct Timing {
  double seconds_per_iter = 0.0;
  std::uint64_t iterations = 0;
};

/// Repeats fn until min_seconds of wall time accumulate (at least once),
/// returning the mean per-iteration cost. The checksum sink keeps the
/// optimizer honest.
Timing measure(double min_seconds, const std::function<std::uint64_t()>& fn) {
  static volatile std::uint64_t sink = 0;
  using clock = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution
  Timing timing;
  const auto begin = clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || timing.iterations == 0) {
    sink = sink + fn();
    ++timing.iterations;
    elapsed = std::chrono::duration<double>(clock::now() - begin).count();
  }
  timing.seconds_per_iter = elapsed / static_cast<double>(timing.iterations);
  return timing;
}

/// Read-only streambuf over an existing byte string: both readers consume
/// the capture without an istringstream's defensive copy per iteration.
class MemBuf : public std::streambuf {
 public:
  explicit MemBuf(const std::string& data) {
    auto* base = const_cast<char*>(data.data());
    setg(base, base, base + data.size());
  }
};

auto record_key(const net::PacketRecord& rec) {
  return std::make_tuple(rec.ts_sec, rec.ts_usec, rec.src.value(),
                         rec.dst.value(), rec.proto, rec.ip_len, rec.ttl,
                         rec.src_port, rec.dst_port, rec.tcp_flags,
                         rec.icmp_type, rec.icmp_code, rec.has_quoted,
                         rec.quoted_src.value(), rec.quoted_dst.value(),
                         rec.quoted_src_port, rec.quoted_dst_port);
}

std::vector<net::PacketRecord> read_sequential(const std::string& pcap) {
  MemBuf buf(pcap);
  std::istream in(&buf);
  net::PcapReader reader(in);
  std::vector<net::PacketRecord> out;
  while (auto rec = reader.next_packet()) out.push_back(*rec);
  return out;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_ingest [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  const double min_measure_s = smoke ? 0.02 : 0.5;

  parallel::WorkloadConfig config;
  if (smoke) {
    config.direct_attacks = 60;
    config.reflection_attacks = 12;
    config.window_s = 3600.0;
  } else {
    config.direct_attacks = 400;
    config.reflection_attacks = 80;
    config.window_s = 4.0 * 3600.0;
  }

  bench::print_header(
      "Batched ingest: chunked reader + SPSC ring vs per-packet loop",
      "ingest-layer addition; no paper table — baseline for "
      "BENCH_ingest.json");
  std::cerr << "[bench] generating workload (seed " << config.seed << ")...\n";
  const auto workload = parallel::make_workload(config);
  std::ostringstream encoded(std::ios::binary);
  {
    net::PcapWriter writer(encoded);
    for (const auto& rec : workload.packets) writer.write_packet(rec);
  }
  const std::string pcap = encoded.str();
  std::cerr << "[bench] " << workload.packets.size() << " packets, "
            << pcap.size() << " pcap bytes\n";

  // --- Identity cross-check before any timing --------------------------
  const auto reference = read_sequential(pcap);
  if (reference.size() != workload.packets.size()) {
    std::cerr << "bench_ingest: sequential reader lost packets\n";
    return 1;
  }
  struct IngestConfig {
    std::size_t batch_frames;
    std::size_t ring_capacity;
  };
  const IngestConfig checked[] = {{1, 2}, {64, 8}, {4096, 8}};
  for (const auto& cfg : checked) {
    ingest::IngestOptions options;
    options.batch_frames = cfg.batch_frames;
    options.ring_capacity = cfg.ring_capacity;
    MemBuf buf(pcap);
    std::istream in(&buf);
    const auto batched = ingest::read_packets(in, options);
    bool identical = batched.size() == reference.size();
    for (std::size_t i = 0; identical && i < batched.size(); ++i)
      identical = record_key(batched[i]) == record_key(reference[i]);
    if (!identical) {
      std::cerr << "bench_ingest: batched output diverged at batch="
                << cfg.batch_frames << " ring=" << cfg.ring_capacity << "\n";
      return 1;
    }
  }
  std::cout << "identity: batched == sequential across "
            << sizeof(checked) / sizeof(checked[0]) << " configurations ("
            << reference.size() << " packets)\n";

  // --- Timing ----------------------------------------------------------
  const double packets = static_cast<double>(reference.size());
  const auto seq_timing = measure(min_measure_s, [&] {
    return read_sequential(pcap).size();
  });
  const double seq_pps = packets / seq_timing.seconds_per_iter;

  ingest::IngestOptions timed;  // defaults: batch 4096, ring 8, block
  const auto batched_timing = measure(min_measure_s, [&] {
    MemBuf buf(pcap);
    std::istream in(&buf);
    std::uint64_t count = 0;
    ingest::run_ingest(
        in, timed,
        ingest::RecordBatchSink([&](std::span<const net::PacketRecord> recs) {
          count += recs.size();
        }));
    return count;
  });
  const double batched_pps = packets / batched_timing.seconds_per_iter;
  const double speedup =
      batched_timing.seconds_per_iter > 0.0
          ? seq_timing.seconds_per_iter / batched_timing.seconds_per_iter
          : 0.0;

  TextTable table({"reader", "ms/replay", "packets/sec", "speedup"});
  table.add_row({"sequential", fixed(seq_timing.seconds_per_iter * 1e3, 2),
                 fixed(seq_pps / 1e6, 2) + "M", "1.00x"});
  table.add_row({"batched", fixed(batched_timing.seconds_per_iter * 1e3, 2),
                 fixed(batched_pps / 1e6, 2) + "M", fixed(speedup, 2) + "x"});
  std::cout << table;

  const unsigned hardware = std::thread::hardware_concurrency();
  const bool gate_applies = !smoke && hardware >= 2;
  std::cout << "hardware threads: " << hardware
            << (gate_applies ? "" : " (speedup gate skipped)") << "\n";
  bench::JsonValue root;
  root.set("bench", "ingest")
      .set("smoke", smoke)
      .set("seed", static_cast<std::uint64_t>(config.seed))
      .set("packets", static_cast<std::uint64_t>(reference.size()))
      .set("pcap_bytes", static_cast<std::uint64_t>(pcap.size()))
      .set("batch_frames", static_cast<std::uint64_t>(timed.batch_frames))
      .set("ring_capacity", static_cast<std::uint64_t>(timed.ring_capacity))
      .set("sequential_pps", seq_pps)
      .set("batched_pps", batched_pps)
      .set("speedup", speedup)
      .set("identity", true)
      .set("hardware_threads", static_cast<std::uint64_t>(hardware))
      .set("speedup_gate",
           gate_applies ? (speedup >= 3.0 ? "passed" : "failed")
                        : (smoke ? "skipped (smoke)"
                                 : "skipped (insufficient cores)"));
  bench::write_json(out_path, root);

  if (gate_applies && speedup < 3.0) {
    std::cerr << "bench_ingest: batched speedup " << fixed(speedup, 2)
              << "x is below the 3x baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_ingest: " << e.what() << "\n";
  return 1;
}
