// Figure 2 — attack-duration CDFs for both datasets at the paper's tick
// marks, plus the headline statistics.
#include "bench_common.h"

namespace {

void print_cdf(const dosm::EmpiricalDistribution& dist, const char* name,
               double paper_mean_s, double paper_median_s) {
  using namespace dosm;
  std::cout << "\n-- " << name << " --\n";
  const double ticks[] = {10,   15,   30,    60,    300,   600,  900,
                          1800, 3600, 7200,  10800, 21600, 43200, 86400};
  TextTable table({"duration", "CDF"});
  for (const double t : ticks)
    table.add_row({format_duration(t), percent(dist.cdf(t), 1)});
  std::cout << table;
  std::cout << "mean " << format_duration(dist.mean()) << " (paper "
            << format_duration(paper_mean_s) << "), median "
            << format_duration(dist.median()) << " (paper "
            << format_duration(paper_median_s) << ")\n";
}

}  // namespace

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 2: duration of attacks (CDFs)",
      "telescope: ~40% <= 5 min, top 10% >= 1.5 h, mean 48 m, median 454 s; "
      "honeypot: 50% <= 255 s, top 10% >= 40 m, mean 18 m, median 255 s");

  const auto& world = bench::shared_world();
  const auto telescope =
      world.store.duration_distribution(core::SourceFilter::kTelescope);
  const auto honeypot =
      world.store.duration_distribution(core::SourceFilter::kHoneypot);

  print_cdf(telescope, "Telescope", 48 * 60, 454);
  print_cdf(honeypot, "Honeypot", 18 * 60, 255);

  std::cout << "\nShape checks:\n";
  std::cout << "  telescope P90 " << format_duration(telescope.percentile(90))
            << " (paper: ~1.5h)\n";
  std::cout << "  honeypot P90 " << format_duration(honeypot.percentile(90))
            << " (paper: ~40m)\n";
  std::cout << "  telescope >1 day: " << percent(1.0 - telescope.cdf(86400), 2)
            << " (paper: ~0.2%)\n";
  std::cout << "  honeypot at 24h cap: "
            << percent(1.0 - honeypot.cdf(86400 - 60), 3)
            << " (paper: ~0.02%)\n";
  std::cout << "  randomly spoofed last longer: "
            << (telescope.median() > honeypot.median() ? "holds" : "VIOLATED")
            << "\n";
  return 0;
}
