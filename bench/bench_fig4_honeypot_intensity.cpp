// Figure 4 — intensity distribution of honeypot events (average requests/sec
// to one reflector), overall and per top-five reflection protocol.
#include "bench_common.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 4: honeypot intensity CDF per protocol",
      "overall mean 413 / median 77 rps; NTP has the heaviest tail (top 10% "
      "beyond ~2000 rps); 70-90% of attacks below a couple thousand rps");

  const auto& world = bench::shared_world();

  // Build the overall + per-protocol distributions.
  EmpiricalDistribution overall;
  std::map<amppot::ReflectionProtocol, EmpiricalDistribution> per_protocol;
  for (const auto& event : world.store.events()) {
    if (!event.is_honeypot()) continue;
    overall.add(event.intensity);
    per_protocol[event.reflection].add(event.intensity);
  }

  const amppot::ReflectionProtocol top5[] = {
      amppot::ReflectionProtocol::kNtp, amppot::ReflectionProtocol::kDns,
      amppot::ReflectionProtocol::kCharGen, amppot::ReflectionProtocol::kSsdp,
      amppot::ReflectionProtocol::kRipv1};

  TextTable table({"rps", "Overall", "NTP", "DNS", "CharGen", "SSDP", "RIPv1"});
  for (const double x : {1.0, 10.0, 77.0, 100.0, 1000.0, 2000.0, 10000.0, 100000.0}) {
    std::vector<std::string> row{human_count(x, 0), percent(overall.cdf(x), 1)};
    for (const auto protocol : top5)
      row.push_back(percent(per_protocol[protocol].cdf(x), 1));
    table.add_row(std::move(row));
  }
  std::cout << table;

  std::cout << "\noverall mean " << fixed(overall.mean(), 1)
            << " (paper 413), median " << fixed(overall.median(), 1)
            << " (paper 77)\n";
  const auto& ntp = per_protocol[amppot::ReflectionProtocol::kNtp];
  const auto& rip = per_protocol[amppot::ReflectionProtocol::kRipv1];
  std::cout << "NTP P90: " << human_count(ntp.percentile(90), 0)
            << " rps (paper: ~2000; tail to 100k+)\n";
  std::cout << "Shape: NTP median > RIPv1 median (per-protocol offsets): "
            << (ntp.median() > rip.median() ? "holds" : "VIOLATED") << "\n";
  return 0;
}
