// Table 4 — per-country target rankings for both datasets, with the paper's
// notable exceptions (Japan low despite address-space rank; Russia/France
// high; France driven by OVH).
#include "bench_common.h"

namespace {

void print_ranking(const dosm::core::EventStore& store,
                   dosm::core::SourceFilter filter,
                   const dosm::meta::GeoDatabase& geo,
                   const std::vector<std::pair<const char*, double>>& paper) {
  using namespace dosm;
  const auto ranking = store.country_ranking(filter, geo);
  TextTable table({"rank", "country", "#targets", "share", "paper"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size()); ++i) {
    const std::string paper_cell =
        i < paper.size() ? std::string(paper[i].first) + " " +
                               percent(paper[i].second, 2)
                         : "-";
    table.add_row({std::to_string(i + 1), ranking[i].country.to_string(),
                   human_count(double(ranking[i].targets)),
                   percent(ranking[i].share, 2), paper_cell});
  }
  std::cout << table;

  // The Japan exception: find its rank.
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].country.to_string() == "JP") {
      std::cout << "Japan rank: " << (i + 1)
                << " (paper: 25th telescope / 14th honeypot despite 3rd in "
                   "address usage)\n";
      break;
    }
  }
}

}  // namespace

int main() {
  using namespace dosm;
  bench::print_header("Table 4: targeted IP addresses per country",
                      "telescope: US 25.56%, CN 10.47%, RU 5.72%, FR 5.14%, "
                      "DE 4.20%; honeypot: US 29.50%, CN 9.96%, FR 7.73%, GB "
                      "6.37%, DE 5.18%");

  const auto& world = bench::shared_world();
  const auto& geo = world.population.geo();

  std::cout << "\n(a) Telescope (randomly spoofed attacks)\n";
  print_ranking(world.store, core::SourceFilter::kTelescope, geo,
                {{"US", 0.2556},
                 {"China", 0.1047},
                 {"Russia", 0.0572},
                 {"France", 0.0514},
                 {"Germany", 0.0420}});

  std::cout << "\n(b) Honeypot (reflection attacks)\n";
  print_ranking(world.store, core::SourceFilter::kHoneypot, geo,
                {{"US", 0.2950},
                 {"China", 0.0996},
                 {"France", 0.0773},
                 {"GB", 0.0637},
                 {"Germany", 0.0518}});
  return 0;
}
