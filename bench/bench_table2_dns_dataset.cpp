// Table 2 — the active DNS dataset: Web sites and collected data points per
// gTLD over the two-year window (our namespace is a ~1/3500 scale model of
// OpenINTEL's 210M domains; the shape target is the TLD mix and the
// data-point-per-domain scale).
#include "bench_common.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Table 2: Active DNS data set (.com/.net/.org, 731 days)",
      ".com 173.7M sites / .net 21.6M / .org 14.7M; 1257.6G data points");

  const auto& world = bench::shared_world();
  const auto& hosting = world.hosting;
  const auto& dns = world.dns;

  struct Row {
    const char* tld;
    double paper_sites;
    double paper_points_g;
  };
  const Row paper[] = {{"com", 173.7e6, 1045.9e9},
                       {"net", 21.6e6, 121.0e9},
                       {"org", 14.7e6, 90.7e9}};

  TextTable table({"source", "#Web sites", "share", "#data points"});
  std::uint64_t total_sites = 0;
  for (const auto& row : paper) total_sites += hosting.domains_in_tld(row.tld);
  // Data points scale with live domain-days; attribute them per TLD by the
  // domain share (registration days are TLD-independent in the model).
  const auto total_points = dns.num_observations();

  double paper_total = 0;
  for (const auto& row : paper) paper_total += row.paper_sites;

  for (const auto& row : paper) {
    const auto sites = hosting.domains_in_tld(row.tld);
    const double share = double(sites) / double(total_sites);
    table.add_row({std::string(".") + row.tld, human_count(double(sites)),
                   percent(share, 1),
                   human_count(share * double(total_points))});
    table.add_row({std::string("paper: .") + row.tld,
                   human_count(row.paper_sites),
                   percent(row.paper_sites / paper_total, 1),
                   human_count(row.paper_points_g)});
  }
  table.add_row({"Combined", human_count(double(total_sites)), "100%",
                 human_count(double(total_points))});
  table.add_row({"paper: Combined", human_count(210.0e6), "100%",
                 human_count(1257.6e9)});
  std::cout << table;

  const double com_share =
      double(hosting.domains_in_tld("com")) / double(total_sites);
  std::cout << "\nShape: .com share " << percent(com_share, 1)
            << " (paper: 82.7%)"
            << (std::abs(com_share - 0.827) < 0.02 ? "  [OK]" : "  [DRIFT]")
            << "\n";
  std::cout << "Scale factor vs paper: ~1/"
            << human_count(210.0e6 / double(total_sites), 0) << " of the "
            << "measured namespace\n";
  return 0;
}
