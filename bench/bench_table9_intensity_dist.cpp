// Table 9 — the normalized attack-intensity distribution over attacked Web
// sites (per-site max across its attacks; the highest value for joint
// attacks), at the paper's select percentiles.
#include "bench_common.h"
#include "core/impact.h"
#include "core/migration_analysis.h"
#include "dps/classifier.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Table 9: normalized attack intensity over Web sites",
      "percentile -> intensity: 11.1% at 0.0, 95% <= 0.07, 97.5% <= 0.13, "
      "99% <= 0.52, 99.9% <= 0.85, 100% = 1.0");

  const auto& world = bench::shared_world();
  const core::ImpactAnalysis impact(world.store, world.dns);
  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const core::MigrationAnalysis migration(impact, timelines);
  const auto& intensities = migration.site_intensities();

  TextTable table({"percentile", "intensity (<=)", "paper"});
  const std::pair<double, double> paper_rows[] = {
      {95.0, 0.07}, {97.5, 0.13}, {99.0, 0.52}, {99.9, 0.85}, {100.0, 1.0}};
  // The paper's first column: the fraction of sites at (rounded) zero.
  const double at_zero = intensities.cdf(0.005);
  table.add_row({"(share at ~0.0)", percent(at_zero, 1), "11.1% of sites"});
  for (const auto& [p, expected] : paper_rows) {
    table.add_row({fixed(p, 1) + "%", fixed(intensities.percentile(p), 3),
                   fixed(expected, 2)});
  }
  std::cout << table;
  std::cout << "\nSites in the distribution: " << intensities.size()
            << "; shape: heavy concentration at tiny normalized intensity "
            << (intensities.percentile(95.0) < 0.3 ? "holds" : "VIOLATED")
            << "\n";
  return 0;
}
