// Figure 5 — attack events of medium or higher intensity over time (both
// datasets combined; "medium+" = intensity at or above its dataset's mean).
#include "bench_common.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 5: medium+-intensity attacks over time",
      "~1.4k/day on average vs 28.7k/day overall (i.e. ~5% of events)");

  const auto& world = bench::shared_world();
  const auto& pfx2as = world.population.pfx2as();
  const auto all =
      world.store.daily_breakdown(core::SourceFilter::kCombined, pfx2as);
  const auto medium = world.store.daily_breakdown(core::SourceFilter::kCombined,
                                                  pfx2as, true);

  std::cout << "mean telescope intensity threshold: "
            << fixed(world.store.mean_intensity(core::EventSource::kTelescope), 1)
            << " pps; honeypot: "
            << fixed(world.store.mean_intensity(core::EventSource::kHoneypot), 1)
            << " rps\n\n";

  TextTable table({"quarter", "all attacks/day", "medium+/day", "medium share"});
  const auto& window = world.window;
  for (int q = 0; q * 91 < all.attacks.num_days(); ++q) {
    const int start = q * 91;
    const int end = std::min(start + 91, all.attacks.num_days());
    double total = 0, med = 0;
    for (int d = start; d < end; ++d) {
      total += all.attacks.at(d);
      med += medium.attacks.at(d);
    }
    const int days = end - start;
    table.add_row({to_string(window.date_of_day(start)),
                   fixed(total / days, 1), fixed(med / days, 1),
                   percent(total > 0 ? med / total : 0.0, 1)});
  }
  std::cout << table;

  const double share = medium.attacks.total() / all.attacks.total();
  std::cout << "\nOverall medium+ share: " << percent(share, 1)
            << " (paper: 1.4k/28.7k = 4.9%)\n";
  std::cout << "Peak medium+ day: "
            << to_string(window.date_of_day(medium.attacks.argmax())) << " with "
            << medium.attacks.max() << " events (campaign days drive spikes)\n";
  return 0;
}
