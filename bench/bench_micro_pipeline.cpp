// Microbenchmarks of the hot pipeline kernels (google-benchmark), plus the
// two-tier ablation: packet-level detection vs analytic observation on the
// same ground truth.
//
// With --smoke the binary instead runs the instrumentation-overhead gate:
// the full Moore pipeline is timed over the same synthetic capture with the
// obs layer enabled and disabled in alternating runs, and the min-of-N ratio
// must stay within the <= 3% overhead budget (exit 1 otherwise). The result
// is written as BENCH_micro_pipeline.json for CI to archive.
//
//   $ ./bench_micro_pipeline                 # google-benchmark suite
//   $ ./bench_micro_pipeline --smoke [--out F]
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "dns/snapshot.h"
#include "meta/prefix_map.h"
#include "net/pcap.h"
#include "obs/metrics.h"
#include "sim/observe.h"
#include "telescope/pipeline.h"
#include "telescope/synthesizer.h"

namespace {

using namespace dosm;

std::vector<net::PacketRecord> synth_capture(std::size_t target_packets) {
  telescope::TelescopeSynthesizer synthesizer(1);
  telescope::SpoofedAttackSpec spec;
  spec.victim = net::Ipv4Addr(9, 9, 9, 9);
  spec.start = 0.0;
  spec.duration_s = 600.0;
  spec.victim_pps = static_cast<double>(target_packets) / 600.0 * 256.0;
  spec.ports = {80};
  return synthesizer.synthesize({&spec, 1}, 0.0, 600.0,
                                {.scan_pps = 10.0, .misconfig_pps = 5.0});
}

void BM_PacketEncode(benchmark::State& state) {
  net::PacketRecord rec;
  rec.src = net::Ipv4Addr(1, 2, 3, 4);
  rec.dst = net::Ipv4Addr(44, 0, 0, 1);
  rec.proto = 6;
  rec.src_port = 80;
  rec.dst_port = 4242;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  for (auto _ : state) benchmark::DoNotOptimize(net::encode_packet(rec));
}
BENCHMARK(BM_PacketEncode);

void BM_PacketDecode(benchmark::State& state) {
  net::PacketRecord rec;
  rec.src = net::Ipv4Addr(1, 2, 3, 4);
  rec.dst = net::Ipv4Addr(44, 0, 0, 1);
  rec.proto = 6;
  rec.src_port = 80;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  const auto bytes = net::encode_packet(rec);
  for (auto _ : state) benchmark::DoNotOptimize(net::decode_packet(bytes));
}
BENCHMARK(BM_PacketDecode);

void BM_MoorePipeline(benchmark::State& state) {
  const auto packets = synth_capture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    telescope::Pipeline pipeline;
    auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
    pipeline.replay(packets);
    pipeline.finish();
    benchmark::DoNotOptimize(rsdos.events().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_MoorePipeline)->Arg(10000)->Arg(100000);

void BM_PcapRoundTrip(benchmark::State& state) {
  const auto packets = synth_capture(10000);
  for (auto _ : state) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    net::PcapWriter writer(stream);
    for (const auto& rec : packets) writer.write_packet(rec);
    net::PcapReader reader(stream);
    std::size_t count = 0;
    while (reader.next_packet()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_PcapRoundTrip);

void BM_PrefixMapLookup(benchmark::State& state) {
  meta::PrefixMap<int> map;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const auto addr =
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    map.insert(net::Prefix(addr, 8 + static_cast<int>(rng.next_below(17))), i);
  }
  Rng query_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup(
        net::Ipv4Addr(static_cast<std::uint32_t>(query_rng.next_u64()))));
  }
}
BENCHMARK(BM_PrefixMapLookup);

void BM_ReverseDnsJoin(benchmark::State& state) {
  dns::SnapshotStore store(365);
  Rng rng(5);
  for (int d = 0; d < 20000; ++d) {
    const auto id = store.add_domain("site" + std::to_string(d) + ".com", 0);
    dns::WebsiteRecord rec;
    rec.www_a = net::Ipv4Addr(
        static_cast<std::uint32_t>(0x0a000000u + rng.next_below(4000)));
    store.record_change(id, 0, rec);
  }
  store.build_reverse_index();
  Rng query_rng(6);
  for (auto _ : state) {
    const auto ip = net::Ipv4Addr(
        static_cast<std::uint32_t>(0x0a000000u + query_rng.next_below(4000)));
    benchmark::DoNotOptimize(
        store.count_sites_on(ip, static_cast<int>(query_rng.next_below(365))));
  }
}
BENCHMARK(BM_ReverseDnsJoin);

// Ablation: the analytic observation tier vs full packet-level synthesis +
// detection of the same attack.
void BM_AblationAnalyticTier(benchmark::State& state) {
  sim::GroundTruthAttack attack;
  attack.kind = sim::AttackKind::kDirect;
  attack.target = net::Ipv4Addr(9, 9, 9, 9);
  attack.duration_s = 600.0;
  attack.victim_pps = 25600.0;
  attack.ports = {80};
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::observe_telescope(attack, rng));
}
BENCHMARK(BM_AblationAnalyticTier);

void BM_AblationPacketTier(benchmark::State& state) {
  telescope::SpoofedAttackSpec spec;
  spec.victim = net::Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 600.0;
  spec.victim_pps = 25600.0;
  spec.ports = {80};
  std::uint64_t seed = 8;
  for (auto _ : state) {
    telescope::TelescopeSynthesizer synthesizer(seed++);
    const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 600.0);
    telescope::Pipeline pipeline;
    auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
    pipeline.replay(packets);
    pipeline.finish();
    benchmark::DoNotOptimize(rsdos.events().size());
  }
}
BENCHMARK(BM_AblationPacketTier);

// ---------------------------------------------------------------------------
// --smoke: instrumentation-overhead gate.
//
// The no-perturbation invariant (byte-identical dumps with metrics on/off) is
// enforced elsewhere; this gate bounds the *cost* side of the contract. The
// full Moore pipeline is the most counter-dense code path (per-packet
// telescope counters plus per-flow threshold accounting), so it is the
// workload most sensitive to a regression in the striped-counter fast path.
// Enabled and disabled runs alternate so slow drift (thermal, cache state)
// hits both sides equally, and min-of-N is compared because the minimum is
// the least noisy location statistic on a shared machine.
// ---------------------------------------------------------------------------

/// One full pipeline pass over the capture; returns the event count so the
/// optimizer cannot elide the work.
std::size_t pipeline_pass(const std::vector<net::PacketRecord>& packets) {
  telescope::Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
  pipeline.replay(packets);
  pipeline.finish();
  return rsdos.events().size();
}

double time_pass(const std::vector<net::PacketRecord>& packets) {
  static volatile std::size_t sink = 0;
  using clock = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution
  const auto begin = clock::now();
  sink = sink + pipeline_pass(packets);
  return std::chrono::duration<double>(clock::now() - begin).count();
}

int run_smoke(const std::string& out_path) {
  constexpr std::size_t kPackets = 50000;
  constexpr int kRounds = 9;  // alternating pairs; min-of-9 per side
  constexpr double kMaxRatio = 1.03;

  bench::print_header(
      "Micro pipeline: instrumentation overhead gate",
      "obs-layer addition; no paper table — counters must cost <= 3% on the "
      "packet-dense Moore pipeline");
  const auto packets = synth_capture(kPackets);
  std::cerr << "[bench] " << packets.size() << " packets per pass, "
            << kRounds << " alternating rounds per side\n";

  // Warm-up pass on each side so first-touch page faults and lazy metric
  // registration do not land inside a measured run.
  obs::set_enabled(true);
  pipeline_pass(packets);
  obs::set_enabled(false);
  pipeline_pass(packets);

  double min_enabled = 0.0;
  double min_disabled = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(true);
    const double enabled_s = time_pass(packets);
    obs::set_enabled(false);
    const double disabled_s = time_pass(packets);
    if (round == 0 || enabled_s < min_enabled) min_enabled = enabled_s;
    if (round == 0 || disabled_s < min_disabled) min_disabled = disabled_s;
  }
  obs::set_enabled(true);

  const double ratio = min_disabled > 0.0 ? min_enabled / min_disabled : 0.0;
  const bool passed = ratio <= kMaxRatio;
  TextTable table({"side", "min_ms"});
  table.add_row({"metrics enabled", fixed(min_enabled * 1e3, 3)});
  table.add_row({"metrics disabled", fixed(min_disabled * 1e3, 3)});
  std::cout << table;
  std::cout << "overhead ratio: " << fixed(ratio, 4) << " (budget "
            << fixed(kMaxRatio, 2) << ")\n";

  bench::JsonValue root;
  root.set("bench", "micro_pipeline")
      .set("mode", "smoke")
      .set("packets_per_pass", static_cast<std::uint64_t>(packets.size()))
      .set("rounds", static_cast<std::uint64_t>(kRounds))
      .set("min_enabled_ms", min_enabled * 1e3)
      .set("min_disabled_ms", min_disabled * 1e3)
      .set("overhead_ratio", ratio)
      .set("overhead_budget", kMaxRatio)
      .set("overhead_gate", passed ? "passed" : "failed");
  bench::write_json(out_path, root);

  if (!passed) {
    std::cerr << "bench_micro_pipeline: instrumentation overhead "
              << fixed((ratio - 1.0) * 100.0, 2) << "% exceeds the 3% budget\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  std::string out_path = "BENCH_micro_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }
  if (smoke) return run_smoke(out_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_micro_pipeline: " << e.what() << "\n";
  return 1;
}
