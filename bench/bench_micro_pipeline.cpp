// Microbenchmarks of the hot pipeline kernels (google-benchmark), plus the
// two-tier ablation: packet-level detection vs analytic observation on the
// same ground truth.
#include <benchmark/benchmark.h>

#include <sstream>

#include "dns/snapshot.h"
#include "meta/prefix_map.h"
#include "net/pcap.h"
#include "sim/observe.h"
#include "telescope/pipeline.h"
#include "telescope/synthesizer.h"

namespace {

using namespace dosm;

std::vector<net::PacketRecord> synth_capture(std::size_t target_packets) {
  telescope::TelescopeSynthesizer synthesizer(1);
  telescope::SpoofedAttackSpec spec;
  spec.victim = net::Ipv4Addr(9, 9, 9, 9);
  spec.start = 0.0;
  spec.duration_s = 600.0;
  spec.victim_pps = static_cast<double>(target_packets) / 600.0 * 256.0;
  spec.ports = {80};
  return synthesizer.synthesize({&spec, 1}, 0.0, 600.0,
                                {.scan_pps = 10.0, .misconfig_pps = 5.0});
}

void BM_PacketEncode(benchmark::State& state) {
  net::PacketRecord rec;
  rec.src = net::Ipv4Addr(1, 2, 3, 4);
  rec.dst = net::Ipv4Addr(44, 0, 0, 1);
  rec.proto = 6;
  rec.src_port = 80;
  rec.dst_port = 4242;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  for (auto _ : state) benchmark::DoNotOptimize(net::encode_packet(rec));
}
BENCHMARK(BM_PacketEncode);

void BM_PacketDecode(benchmark::State& state) {
  net::PacketRecord rec;
  rec.src = net::Ipv4Addr(1, 2, 3, 4);
  rec.dst = net::Ipv4Addr(44, 0, 0, 1);
  rec.proto = 6;
  rec.src_port = 80;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  const auto bytes = net::encode_packet(rec);
  for (auto _ : state) benchmark::DoNotOptimize(net::decode_packet(bytes));
}
BENCHMARK(BM_PacketDecode);

void BM_MoorePipeline(benchmark::State& state) {
  const auto packets = synth_capture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    telescope::Pipeline pipeline;
    auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
    pipeline.replay(packets);
    pipeline.finish();
    benchmark::DoNotOptimize(rsdos.events().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_MoorePipeline)->Arg(10000)->Arg(100000);

void BM_PcapRoundTrip(benchmark::State& state) {
  const auto packets = synth_capture(10000);
  for (auto _ : state) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    net::PcapWriter writer(stream);
    for (const auto& rec : packets) writer.write_packet(rec);
    net::PcapReader reader(stream);
    std::size_t count = 0;
    while (reader.next_packet()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_PcapRoundTrip);

void BM_PrefixMapLookup(benchmark::State& state) {
  meta::PrefixMap<int> map;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const auto addr =
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    map.insert(net::Prefix(addr, 8 + static_cast<int>(rng.next_below(17))), i);
  }
  Rng query_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup(
        net::Ipv4Addr(static_cast<std::uint32_t>(query_rng.next_u64()))));
  }
}
BENCHMARK(BM_PrefixMapLookup);

void BM_ReverseDnsJoin(benchmark::State& state) {
  dns::SnapshotStore store(365);
  Rng rng(5);
  for (int d = 0; d < 20000; ++d) {
    const auto id = store.add_domain("site" + std::to_string(d) + ".com", 0);
    dns::WebsiteRecord rec;
    rec.www_a = net::Ipv4Addr(
        static_cast<std::uint32_t>(0x0a000000u + rng.next_below(4000)));
    store.record_change(id, 0, rec);
  }
  store.build_reverse_index();
  Rng query_rng(6);
  for (auto _ : state) {
    const auto ip = net::Ipv4Addr(
        static_cast<std::uint32_t>(0x0a000000u + query_rng.next_below(4000)));
    benchmark::DoNotOptimize(
        store.count_sites_on(ip, static_cast<int>(query_rng.next_below(365))));
  }
}
BENCHMARK(BM_ReverseDnsJoin);

// Ablation: the analytic observation tier vs full packet-level synthesis +
// detection of the same attack.
void BM_AblationAnalyticTier(benchmark::State& state) {
  sim::GroundTruthAttack attack;
  attack.kind = sim::AttackKind::kDirect;
  attack.target = net::Ipv4Addr(9, 9, 9, 9);
  attack.duration_s = 600.0;
  attack.victim_pps = 25600.0;
  attack.ports = {80};
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::observe_telescope(attack, rng));
}
BENCHMARK(BM_AblationAnalyticTier);

void BM_AblationPacketTier(benchmark::State& state) {
  telescope::SpoofedAttackSpec spec;
  spec.victim = net::Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 600.0;
  spec.victim_pps = 25600.0;
  spec.ports = {80};
  std::uint64_t seed = 8;
  for (auto _ : state) {
    telescope::TelescopeSynthesizer synthesizer(seed++);
    const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 600.0);
    telescope::Pipeline pipeline;
    auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
    pipeline.replay(packets);
    pipeline.finish();
    benchmark::DoNotOptimize(rsdos.events().size());
  }
}
BENCHMARK(BM_AblationPacketTier);

}  // namespace

BENCHMARK_MAIN();
