// Table 8 — top targeted services among single-port randomly-spoofed
// attacks, per transport.
#include "bench_common.h"
#include "core/ports.h"

namespace {

void print_service_table(
    const std::vector<dosm::core::ProtocolShare>& rows,
    const std::vector<std::pair<const char*, double>>& paper) {
  using namespace dosm;
  TextTable table({"service", "#events", "share", "paper"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string paper_cell =
        i < paper.size() ? std::string(paper[i].first) + " " +
                               percent(paper[i].second, 2)
                         : "-";
    table.add_row({rows[i].label, human_count(double(rows[i].events)),
                   percent(rows[i].share, 2), paper_cell});
  }
  std::cout << table;
}

}  // namespace

int main() {
  using namespace dosm;
  bench::print_header(
      "Table 8: top targeted services, single-port attacks (telescope)",
      "TCP: HTTP 48.68%, HTTPS 20.68%, MySQL 1.12%, DNS 1.07%, PPTP 0.99%; "
      "UDP: 27015 18.54%, then scattered game ports; ~75% long tail");

  const auto& world = bench::shared_world();

  std::cout << "\n(a) TCP\n";
  const auto tcp = core::service_distribution(world.store.events(), true);
  print_service_table(tcp, {{"HTTP", 0.4868},
                            {"HTTPS", 0.2068},
                            {"MySQL", 0.0112},
                            {"DNS", 0.0107},
                            {"VPN PPTP", 0.0099},
                            {"Other", 0.2746}});
  std::cout << "Web share of single-port TCP: "
            << percent(core::web_port_share(world.store.events()), 2)
            << " (paper: 69.36%)\n";

  std::cout << "\n(b) UDP\n";
  const auto udp = core::service_distribution(world.store.events(), false);
  print_service_table(udp, {{"27015", 0.1854},
                            {"37547", 0.0204},
                            {"32124", 0.0141},
                            {"28183", 0.0139},
                            {"MySQL", 0.0130},
                            {"Other", 0.7532}});
  std::cout << "Shape: UDP long tail dominates (paper: 75.32% outside top 5): "
            << percent(udp.back().share, 1) << "\n";
  return 0;
}
