// Query-engine baseline bench: index build rate plus indexed (Snapshot) vs
// naive linear-scan (ScanOracle) latency for representative filtered
// queries and top-k aggregations over the full-window world.
//
// Emits BENCH_query.json — the machine-readable baseline CI tracks — next
// to the text report. Every measured query is also cross-checked against
// the oracle, so a correctness regression fails the bench, not just the
// property tests.
//
//   $ ./bench_query [--smoke] [--out FILE]
//     --smoke   small world + short measurement (CI wiring check; the
//               >=10x speedup expectation only applies to the default size)
//     --out F   baseline path (default BENCH_query.json)
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/scan.h"
#include "query/snapshot.h"

namespace {

using namespace dosm;

struct Timing {
  double seconds_per_iter = 0.0;
  std::uint64_t iterations = 0;
};

/// Repeats fn until min_seconds of wall time accumulate (at least once),
/// returning the mean per-iteration cost. The checksum sink keeps the
/// optimizer honest without google-benchmark's harness.
Timing measure(double min_seconds, const std::function<std::uint64_t()>& fn) {
  static volatile std::uint64_t sink = 0;
  using clock = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution
  Timing timing;
  const auto begin = clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || timing.iterations == 0) {
    sink = sink + fn();
    ++timing.iterations;
    elapsed = std::chrono::duration<double>(clock::now() - begin).count();
  }
  timing.seconds_per_iter = elapsed / static_cast<double>(timing.iterations);
  return timing;
}

struct QueryCase {
  std::string name;
  query::Query query;
};

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_query [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  const double min_measure_s = smoke ? 0.02 : 0.25;

  sim::ScenarioConfig config = bench::default_config();
  if (smoke) config = sim::ScenarioConfig::small();
  bench::print_header(
      "Query engine: indexed snapshot vs naive scan",
      "serving-layer addition; no paper table — baseline for BENCH_query.json");
  std::cerr << "[bench] building " << config.window.num_days()
            << "-day world...\n";
  const auto world = sim::build_world(config);
  const auto events = world->store.events();
  const auto& pfx2as = world->population.pfx2as();
  const auto& geo = world->population.geo();
  std::cerr << "[bench] " << events.size() << " events\n";

  // --- Index build rate -----------------------------------------------
  // Default single-segment context: this baseline (and its >=10x gate)
  // measures the monolithic layout; bench_incremental covers segmentation.
  const query::BuildContext ctx{pfx2as, geo};
  const auto build_timing = measure(min_measure_s, [&] {
    return query::Snapshot::build(world->window, events, ctx)->size();
  });
  const double build_rate =
      static_cast<double>(events.size()) / build_timing.seconds_per_iter;

  const auto snapshot = query::Snapshot::build(world->window, events, ctx);
  const query::ScanOracle oracle(events, world->window, pfx2as, geo);

  // --- Representative filtered queries --------------------------------
  // Selectivity anchors come from the data itself so the bench stays
  // meaningful across scenario scales.
  const auto busiest_target = snapshot->top_targets(query::Query{}, 1).at(0);
  const auto busiest_asn = snapshot->top_asns(query::Query{}, 1).at(0);
  const auto top_country = snapshot->top_countries(query::Query{}, 1).at(0);
  const double mid = static_cast<double>(
      world->window.day_start(world->window.num_days() / 2));
  const double week = 7.0 * static_cast<double>(kSecondsPerDay);

  std::vector<QueryCase> cases;
  cases.push_back({"week_mid_window", query::Query{}.between(mid, mid + week)});
  cases.push_back({"busiest_target_32",
                   query::Query{}.in_prefix(
                       net::Prefix(busiest_target.target, 32))});
  cases.push_back({"busiest_asn", query::Query{}.in_asn(busiest_asn.asn)});
  cases.push_back(
      {"top_country", query::Query{}.in_country(top_country.country)});
  cases.push_back({"port_80_week", query::Query{}
                                       .on_port(80)
                                       .between(mid, mid + week)});
  cases.push_back({"country_intense_week",
                   query::Query{}
                       .in_country(top_country.country)
                       .between(mid, mid + week)
                       .at_least(1.0)});

  bench::JsonValue queries = bench::JsonValue::array();
  TextTable table({"query", "plan", "indexed_us", "scan_us", "speedup"});
  double min_speedup = 0.0;
  bool first = true;
  for (const auto& qc : cases) {
    const std::uint64_t expected = oracle.count(qc.query);
    if (snapshot->count(qc.query) != expected) {
      std::cerr << "bench_query: snapshot disagrees with oracle on "
                << qc.name << "\n";
      return 1;
    }
    const auto indexed =
        measure(min_measure_s, [&] { return snapshot->count(qc.query); });
    const auto scan =
        measure(min_measure_s, [&] { return oracle.count(qc.query); });
    const double speedup = scan.seconds_per_iter / indexed.seconds_per_iter;
    if (first || speedup < min_speedup) min_speedup = speedup;
    first = false;
    const auto plan = snapshot->plan(qc.query);
    table.add_row({qc.name, query::to_string(plan.choice),
                   fixed(indexed.seconds_per_iter * 1e6, 2),
                   fixed(scan.seconds_per_iter * 1e6, 2),
                   fixed(speedup, 1) + "x"});
    queries.push(bench::JsonValue()
                     .set("name", qc.name)
                     .set("plan", query::to_string(plan.choice))
                     .set("candidates", plan.candidates)
                     .set("matches", expected)
                     .set("indexed_us", indexed.seconds_per_iter * 1e6)
                     .set("scan_us", scan.seconds_per_iter * 1e6)
                     .set("speedup", speedup));
  }
  std::cout << table;

  // --- Top-k aggregations (heavier per-row work on both sides) ---------
  const auto topk_indexed = measure(min_measure_s, [&] {
    return snapshot->top_asns(query::Query{}, 10).size();
  });
  const auto topk_scan = measure(min_measure_s, [&] {
    return oracle.top_asns(query::Query{}, 10).size();
  });
  const auto table4_indexed = measure(min_measure_s, [&] {
    return snapshot->country_ranking(query::Query{}).size();
  });
  const auto table4_scan = measure(min_measure_s, [&] {
    return oracle.country_ranking(query::Query{}).size();
  });
  std::cout << "index build: " << human_count(build_rate) << " events/s ("
            << fixed(build_timing.seconds_per_iter * 1e3, 1) << " ms)\n"
            << "top-10 ASNs: " << fixed(topk_indexed.seconds_per_iter * 1e6, 1)
            << " us indexed vs " << fixed(topk_scan.seconds_per_iter * 1e6, 1)
            << " us scan\n"
            << "min filtered-query speedup: " << fixed(min_speedup, 1)
            << "x\n";

  bench::JsonValue root;
  root.set("bench", "query")
      .set("smoke", smoke)
      .set("events", static_cast<std::uint64_t>(events.size()))
      .set("days", static_cast<std::uint64_t>(world->window.num_days()))
      .set("seed", static_cast<std::uint64_t>(config.seed))
      .set("index_build", bench::JsonValue()
                              .set("ms", build_timing.seconds_per_iter * 1e3)
                              .set("events_per_sec", build_rate))
      .set("filtered_queries", std::move(queries))
      .set("min_filtered_speedup", min_speedup)
      .set("topk_asns", bench::JsonValue()
                            .set("indexed_us",
                                 topk_indexed.seconds_per_iter * 1e6)
                            .set("scan_us", topk_scan.seconds_per_iter * 1e6))
      .set("country_ranking",
           bench::JsonValue()
               .set("indexed_us", table4_indexed.seconds_per_iter * 1e6)
               .set("scan_us", table4_scan.seconds_per_iter * 1e6));
  bench::write_json(out_path, root);

  if (!smoke && min_speedup < 10.0) {
    std::cerr << "bench_query: min filtered-query speedup "
              << fixed(min_speedup, 1) << "x is below the 10x baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_query: " << e.what() << "\n";
  return 1;
}
