// Table 6 — reflection protocol distribution of honeypot attack events.
#include "bench_common.h"
#include "core/ports.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Table 6: reflection protocol distribution (honeypots)",
      "NTP 40.08%, DNS 26.17%, CharGen 22.37%, SSDP 8.38%, RIPv1 2.27%, "
      "Other 0.73%");

  const auto& world = bench::shared_world();
  const auto rows = core::reflection_distribution(world.store);
  const std::map<std::string, double> paper{
      {"NTP", 0.4008},  {"DNS", 0.2617},  {"CharGen", 0.2237},
      {"SSDP", 0.0838}, {"RIPv1", 0.0227}, {"Other", 0.0073}};

  TextTable table({"vector", "#events", "share", "paper share"});
  bool order_ok = true;
  double prev = 1.0;
  for (const auto& row : rows) {
    const auto it = paper.find(row.label);
    table.add_row({row.label, human_count(double(row.events)),
                   percent(row.share, 2),
                   it != paper.end() ? percent(it->second, 2) : "-"});
    if (row.label != "Other") {
      if (row.share > prev) order_ok = false;
      prev = row.share;
    }
  }
  std::cout << table;
  std::cout << "\nShape: NTP > DNS > CharGen > SSDP > RIPv1 ordering: "
            << (order_ok && rows[0].label == "NTP" ? "holds" : "VIOLATED")
            << "\n";
  return 0;
}
