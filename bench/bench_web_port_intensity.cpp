// §4 Web-port attacks — randomly-spoofed attacks against ports 80/443 are
// more intense but shorter than the overall population.
#include "bench_common.h"
#include "core/ports.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Web-port attack intensity & duration (§4)",
      "web-port attacks: mean 226 pps (vs 107 overall), median unchanged at "
      "1; mean duration 10 m (vs 48 m), median 240 s (vs 454 s)");

  const auto& world = bench::shared_world();

  EmpiricalDistribution all_intensity, web_intensity;
  EmpiricalDistribution all_duration, web_duration;
  for (const auto& event : world.store.events()) {
    if (!event.is_telescope()) continue;
    all_intensity.add(event.intensity);
    all_duration.add(event.duration());
    if (event.single_port() && core::is_web_port(event.top_port)) {
      web_intensity.add(event.intensity);
      web_duration.add(event.duration());
    }
  }

  TextTable table({"statistic", "all attacks", "web-port attacks", "paper"});
  table.add_row({"mean max-pps", fixed(all_intensity.mean(), 1),
                 fixed(web_intensity.mean(), 1), "107 -> 226"});
  table.add_row({"median max-pps", fixed(all_intensity.median(), 2),
                 fixed(web_intensity.median(), 2), "1 -> 1"});
  table.add_row({"mean duration", format_duration(all_duration.mean()),
                 format_duration(web_duration.mean()), "48m -> 10m"});
  table.add_row({"median duration", format_duration(all_duration.median()),
                 format_duration(web_duration.median()), "454s -> 240s"});
  std::cout << table;

  std::cout << "\nWeb-port events: " << web_intensity.size() << " of "
            << all_intensity.size() << " telescope events\n";
  std::cout << "Shape: web-port attacks more intense: "
            << (web_intensity.mean() > all_intensity.mean() ? "holds"
                                                            : "VIOLATED")
            << "; shorter: "
            << (web_duration.mean() < all_duration.mean() ? "holds"
                                                          : "VIOLATED")
            << "\n";
  return 0;
}
