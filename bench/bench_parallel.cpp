// Parallel detection pipeline bench: sharded telescope + honeypot detection
// throughput and speedup versus the 1-thread path, over the shared synthetic
// packet-level workload (src/parallel/workload.h).
//
// Emits BENCH_parallel.json — the machine-readable baseline CI tracks. Every
// measured configuration is first cross-checked event-by-event against the
// sequential detectors, so a determinism or correctness regression fails the
// bench before any timing is reported.
//
//   $ ./bench_parallel [--smoke] [--out FILE]
//     --smoke   tiny workload + short measurement (CI wiring check; the
//               >=3x speedup gate only applies at the default size)
//     --out F   baseline path (default BENCH_parallel.json)
//
// The speedup gate additionally requires >= 8 hardware threads; on smaller
// machines the gate is recorded as skipped rather than failed, since a
// 1-core runner cannot demonstrate parallel speedup.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "parallel/detect.h"
#include "parallel/workload.h"
#include "telescope/flow_table.h"

namespace {

using namespace dosm;

struct Timing {
  double seconds_per_iter = 0.0;
  std::uint64_t iterations = 0;
};

/// Repeats fn until min_seconds of wall time accumulate (at least once),
/// returning the mean per-iteration cost. The checksum sink keeps the
/// optimizer honest.
Timing measure(double min_seconds, const std::function<std::uint64_t()>& fn) {
  static volatile std::uint64_t sink = 0;
  using clock = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution
  Timing timing;
  const auto begin = clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || timing.iterations == 0) {
    sink = sink + fn();
    ++timing.iterations;
    elapsed = std::chrono::duration<double>(clock::now() - begin).count();
  }
  timing.seconds_per_iter = elapsed / static_cast<double>(timing.iterations);
  return timing;
}

bool same_events(std::span<const telescope::TelescopeEvent> a,
                 std::span<const telescope::TelescopeEvent> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto key = [](const telescope::TelescopeEvent& e) {
      return std::make_tuple(e.victim, e.start, e.end, e.packets, e.bytes,
                             e.unique_sources, e.num_ports, e.top_port,
                             e.attack_proto, e.max_pps);
    };
    if (key(a[i]) != key(b[i])) return false;
  }
  return true;
}

bool same_events(std::span<const amppot::AmpPotEvent> a,
                 std::span<const amppot::AmpPotEvent> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto key = [](const amppot::AmpPotEvent& e) {
      return std::make_tuple(e.victim, e.protocol, e.start, e.end, e.requests,
                             e.honeypots, e.honeypot_id);
    };
    if (key(a[i]) != key(b[i])) return false;
  }
  return true;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_parallel [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  const double min_measure_s = smoke ? 0.02 : 0.5;

  parallel::WorkloadConfig config;
  if (smoke) {
    config.direct_attacks = 60;
    config.reflection_attacks = 12;
    config.window_s = 3600.0;
  } else {
    config.direct_attacks = 200;
    config.reflection_attacks = 40;
    config.window_s = 2.0 * 3600.0;
  }

  bench::print_header(
      "Parallel detection: sharded pipeline vs sequential",
      "execution-layer addition; no paper table — baseline for "
      "BENCH_parallel.json");
  std::cerr << "[bench] generating workload (seed " << config.seed << ")...\n";
  auto workload = parallel::make_workload(config);
  std::vector<parallel::HoneypotLog> logs;
  std::uint64_t total_requests = 0;
  for (const auto& honeypot : workload.fleet->honeypots()) {
    logs.push_back({honeypot.id(), honeypot.log()});
    total_requests += honeypot.log().size();
  }
  std::cerr << "[bench] " << workload.packets.size() << " telescope packets, "
            << total_requests << " honeypot requests\n";

  // --- Sequential references -------------------------------------------
  std::vector<telescope::TelescopeEvent> seq_telescope;
  telescope::BackscatterDetector sequential(
      [&](const telescope::TelescopeEvent& e) { seq_telescope.push_back(e); });
  for (const auto& rec : workload.packets) sequential.on_packet(rec);
  sequential.finish();
  parallel::canonical_sort(seq_telescope);

  std::vector<amppot::AmpPotEvent> stage1;
  for (const auto& log : logs) {
    const auto events =
        amppot::consolidate_log(log.requests, {}, log.honeypot_id);
    stage1.insert(stage1.end(), events.begin(), events.end());
  }
  const auto seq_honeypot = amppot::merge_fleet_events(std::move(stage1));

  // --- Parallel correctness + timing per thread count ------------------
  const int thread_counts[] = {1, 2, 4, 8};
  bench::JsonValue scaling = bench::JsonValue::array();
  TextTable table({"threads", "telescope_ms", "honeypot_ms", "combined_ms",
                   "speedup"});
  double combined_1t = 0.0;
  double combined_8t = 0.0;
  for (const int threads : thread_counts) {
    const parallel::ParallelConfig pc{threads, 0};
    parallel::ParallelBackscatterDetector detector(pc);
    const auto par_telescope = detector.detect(workload.packets);
    const auto par_honeypot = parallel::parallel_consolidate(logs, {}, pc);
    if (!same_events(par_telescope, seq_telescope)) {
      std::cerr << "bench_parallel: telescope output diverged at " << threads
                << " threads\n";
      return 1;
    }
    if (!same_events(par_honeypot, seq_honeypot)) {
      std::cerr << "bench_parallel: honeypot output diverged at " << threads
                << " threads\n";
      return 1;
    }

    const auto telescope_timing = measure(min_measure_s, [&] {
      return detector.detect(workload.packets).size();
    });
    const auto honeypot_timing = measure(min_measure_s, [&] {
      return parallel::parallel_consolidate(logs, {}, pc).size();
    });
    const double combined = telescope_timing.seconds_per_iter +
                            honeypot_timing.seconds_per_iter;
    if (threads == 1) combined_1t = combined;
    if (threads == 8) combined_8t = combined;
    const double speedup = combined_1t > 0.0 ? combined_1t / combined : 0.0;
    table.add_row({std::to_string(threads),
                   fixed(telescope_timing.seconds_per_iter * 1e3, 2),
                   fixed(honeypot_timing.seconds_per_iter * 1e3, 2),
                   fixed(combined * 1e3, 2), fixed(speedup, 2) + "x"});
    scaling.push(
        bench::JsonValue()
            .set("threads", static_cast<std::uint64_t>(threads))
            .set("telescope_ms", telescope_timing.seconds_per_iter * 1e3)
            .set("honeypot_ms", honeypot_timing.seconds_per_iter * 1e3)
            .set("combined_ms", combined * 1e3)
            .set("speedup", speedup));
  }
  std::cout << table;

  const double speedup_8t = combined_8t > 0.0 ? combined_1t / combined_8t : 0.0;
  const unsigned hardware = std::thread::hardware_concurrency();
  const bool gate_applies = !smoke && hardware >= 8;
  std::cout << "events: " << seq_telescope.size() << " telescope + "
            << seq_honeypot.size() << " honeypot (identical at every thread "
            << "count)\n"
            << "8-thread speedup: " << fixed(speedup_8t, 2) << "x on "
            << hardware << " hardware threads\n";

  bench::JsonValue root;
  root.set("bench", "parallel")
      .set("smoke", smoke)
      .set("seed", static_cast<std::uint64_t>(config.seed))
      .set("telescope_packets",
           static_cast<std::uint64_t>(workload.packets.size()))
      .set("honeypot_requests", total_requests)
      .set("telescope_events",
           static_cast<std::uint64_t>(seq_telescope.size()))
      .set("honeypot_events", static_cast<std::uint64_t>(seq_honeypot.size()))
      .set("hardware_threads", static_cast<std::uint64_t>(hardware))
      .set("deterministic", true)
      .set("scaling", std::move(scaling))
      .set("speedup_8t", speedup_8t)
      .set("speedup_gate", gate_applies
                               ? (speedup_8t >= 3.0 ? "passed" : "failed")
                               : (smoke ? "skipped (smoke)"
                                        : "skipped (insufficient cores)"));
  bench::write_json(out_path, root);

  if (gate_applies && speedup_8t < 3.0) {
    std::cerr << "bench_parallel: 8-thread speedup " << fixed(speedup_8t, 2)
              << "x is below the 3x baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_parallel: " << e.what() << "\n";
  return 1;
}
