// Table 7 — single-port vs multi-port split of randomly-spoofed attacks,
// plus the joint-attack contrast of §4 (joint attacks are more single-port).
#include "bench_common.h"
#include "core/joint.h"
#include "core/ports.h"

int main() {
  using namespace dosm;
  bench::print_header("Table 7: target-port cardinality (telescope)",
                      "single-port 60.6% / multi-port 39.4%; joint attacks "
                      "rise to 77.1% single-port");

  const auto& world = bench::shared_world();
  const auto all = core::port_cardinality(world.store.events());

  TextTable table({"type", "#events", "share", "paper share"});
  table.add_row({"single-port", human_count(double(all.single_port)),
                 percent(all.single_share(), 1), "60.6%"});
  table.add_row({"multi-port", human_count(double(all.multi_port)),
                 percent(1.0 - all.single_share(), 1), "39.4%"});
  std::cout << table;

  const core::JointAttackAnalysis joint(world.store);
  const auto joint_split = core::port_cardinality(joint.telescope_joint_events());
  std::cout << "\nJoint-attack contrast: single-port share "
            << percent(joint_split.single_share(), 1) << " (paper: 77.1%, up "
            << "from 60.6%) -> "
            << (joint_split.single_share() > all.single_share()
                    ? "shift direction holds"
                    : "shift direction VIOLATED")
            << "\n";
  return 0;
}
