// Incremental-snapshot bench: steady-state publish latency of the segmented
// SnapshotPublisher (seal one day, share the rest by pointer) versus the
// pre-segmentation strategy of rebuilding the full frame + index at every
// day boundary.
//
// Emits BENCH_incremental.json. Before any timing, the incrementally
// accumulated snapshot is cross-checked against a batch full rebuild —
// row ids included — so a correctness regression fails the bench outright
// (same policy as bench_parallel's identity check).
//
//   $ ./bench_incremental [--smoke] [--out FILE]
//     --smoke   small world + no speedup gate (CI wiring check; the >=10x
//               steady-state expectation only applies to the default size)
//     --out F   baseline path (default BENCH_incremental.json)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/engine.h"
#include "query/snapshot.h"

namespace {

using namespace dosm;
using clock_type = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_incremental [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  sim::ScenarioConfig config = bench::default_config();
  if (smoke) config = sim::ScenarioConfig::small();
  bench::print_header(
      "Incremental snapshots: O(new-day) publish vs full rebuild",
      "serving-layer addition; no paper table — baseline for "
      "BENCH_incremental.json");
  std::cerr << "[bench] building " << config.window.num_days()
            << "-day world...\n";
  const auto world = sim::build_world(config);
  const auto events = world->store.events();
  const query::BuildContext ctx{world->population.pfx2as(),
                                world->population.geo()};
  std::cerr << "[bench] " << events.size() << " events\n";

  // --- Identity cross-check BEFORE any timing --------------------------
  // The publisher's incrementally accumulated snapshot must equal a batch
  // full rebuild exactly: same global row ids, same aggregates.
  {
    query::QueryEngine engine;
    query::SnapshotPublisher publisher(engine, world->window, ctx);
    for (const auto& event : events) publisher.ingest(event);
    publisher.finish();
    const auto incremental = engine.snapshot();
    const auto full = query::Snapshot::build(world->window, events, ctx);
    if (!incremental || incremental->size() != full->size() ||
        incremental->match_rows(query::Query{}) !=
            full->match_rows(query::Query{}) ||
        incremental->unique_targets(query::Query{}) !=
            full->unique_targets(query::Query{})) {
      std::cerr << "bench_incremental: incremental snapshot disagrees with "
                   "full rebuild\n";
      return 1;
    }
    std::cerr << "[bench] identity check passed: "
              << incremental->num_segments() << " sealed segments == 1 full "
              << "rebuild, " << full->size() << " rows\n";
  }

  // --- Incremental path: per-publish latency over a full replay --------
  // Time every ingest; the calls that crossed a day boundary (sealed +
  // published) are the publish costs. Steady state = mean over the last
  // half of the replay, where the snapshot is at its largest and a full
  // rebuild would be at its most expensive.
  std::vector<double> publish_s;
  std::vector<std::size_t> publish_prefix;  // events ingested before each seal
  query::QueryEngine engine;
  query::SnapshotPublisher publisher(engine, world->window, ctx);
  const auto replay_t0 = clock_type::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto before = publisher.snapshots_published();
    const auto t0 = clock_type::now();
    publisher.ingest(events[i]);
    const double elapsed = seconds_since(t0);
    if (publisher.snapshots_published() > before) {
      publish_s.push_back(elapsed);
      publish_prefix.push_back(i);  // events[0, i) were ingested before it
    }
  }
  publisher.finish();  // final partial day: published but not sampled
  const double replay_s = seconds_since(replay_t0);

  if (publish_s.size() < 2) {
    std::cerr << "bench_incremental: need >= 2 day-boundary publishes\n";
    return 1;
  }
  const std::size_t half = publish_s.size() / 2;
  const std::vector<double> steady(publish_s.begin() +
                                       static_cast<std::ptrdiff_t>(half),
                                   publish_s.end());
  const double incremental_steady_s = mean(steady);

  // --- Baseline: full rebuild at sampled boundaries --------------------
  // The old publisher rebuilt frame + index over ALL ingested events at
  // every day boundary. Replaying that for every day would be O(days^2),
  // so sample a handful of boundaries across the steady-state half.
  const std::size_t samples = std::min<std::size_t>(smoke ? 4 : 8, half);
  std::vector<double> rebuild_s;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t pick =
        half + (publish_s.size() - 1 - half) * s / std::max<std::size_t>(1, samples - 1);
    const auto prefix = events.subspan(0, publish_prefix[pick]);
    const auto t0 = clock_type::now();
    const auto snap = query::Snapshot::build(world->window, prefix, ctx);
    rebuild_s.push_back(seconds_since(t0));
    if (snap->size() != prefix.size()) {
      std::cerr << "bench_incremental: rebuild dropped rows\n";
      return 1;
    }
  }
  const double rebuild_steady_s = mean(rebuild_s);
  const double speedup =
      incremental_steady_s > 0.0 ? rebuild_steady_s / incremental_steady_s
                                 : 0.0;

  std::cout << "publishes:            " << publish_s.size() + 1 << " ("
            << publish_s.size() << " day boundaries timed)\n"
            << "replay total:         " << fixed(replay_s, 2) << " s\n"
            << "steady-state publish: " << fixed(incremental_steady_s * 1e3, 3)
            << " ms (mean over last " << steady.size() << ")\n"
            << "full rebuild:         " << fixed(rebuild_steady_s * 1e3, 3)
            << " ms (mean over " << rebuild_s.size() << " sampled boundaries)\n"
            << "steady-state speedup: " << fixed(speedup, 1) << "x\n";

  bench::JsonValue root;
  root.set("bench", "incremental")
      .set("smoke", smoke)
      .set("events", static_cast<std::uint64_t>(events.size()))
      .set("days", static_cast<std::uint64_t>(world->window.num_days()))
      .set("seed", static_cast<std::uint64_t>(config.seed))
      .set("publishes", static_cast<std::uint64_t>(publish_s.size() + 1))
      .set("replay_s", replay_s)
      .set("segmented",
           bench::JsonValue()
               .set("steady_publish_ms", incremental_steady_s * 1e3)
               .set("max_publish_ms",
                    *std::max_element(publish_s.begin(), publish_s.end()) * 1e3))
      .set("full_rebuild",
           bench::JsonValue()
               .set("steady_publish_ms", rebuild_steady_s * 1e3)
               .set("sampled_boundaries",
                    static_cast<std::uint64_t>(rebuild_s.size())))
      .set("steady_state_speedup", speedup);
  bench::write_json(out_path, root);

  if (!smoke && speedup < 10.0) {
    std::cerr << "bench_incremental: steady-state speedup " << fixed(speedup, 1)
              << "x is below the 10x baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_incremental: " << e.what() << "\n";
  return 1;
}
