// Figure 9 — attack-frequency CDFs for all attacked sites vs sites that
// migrate to a DPS after an attack (repetition is not a migration driver).
#include "bench_common.h"
#include "core/migration_analysis.h"
#include "dps/classifier.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 9: attack frequency, all vs migrating Web sites",
      "all sites: 92.35% attacked <= 5 times; migrating sites: 97.83% <= 5 "
      "times -> repetition does NOT drive migration");

  const auto& world = bench::shared_world();
  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const core::ImpactAnalysis impact(world.store, world.dns);
  const core::MigrationAnalysis migration(impact, timelines);

  const auto& all = migration.attack_counts_all();
  const auto& migrating = migration.attack_counts_migrating();

  TextTable table({"#attacks (<=)", "all sites", "migrating sites"});
  for (int k = 1; k <= 10; ++k) {
    table.add_row({std::to_string(k), percent(all.cdf(k), 2),
                   migrating.empty() ? "n/a" : percent(migrating.cdf(k), 2)});
  }
  std::cout << table;

  std::cout << "\nall sites <= 5 attacks: " << percent(all.cdf(5), 2)
            << " (paper: 92.35%)\n";
  std::cout << "migrating sites <= 5 attacks: "
            << percent(migrating.cdf(5), 2) << " (paper: 97.83%)\n";
  std::cout << "attacked more than once: " << percent(1.0 - all.cdf(1), 1)
            << " (paper: ~14%)\n";
  std::cout << "Shape: migrating sites are not more repeatedly attacked: "
            << (migrating.cdf(5) >= all.cdf(5) - 0.02 ? "holds" : "VIOLATED")
            << "\n";
  return 0;
}
