// Subscription-layer bench: a million synthetic watchers on the posting
// index (src/subscribe) vs the scan-all baseline the index replaces.
//
// The subscription mix mirrors what a live deployment of the paper's §9
// near-realtime loop would carry: mostly exact-victim (/32) watchers, a
// large /24 netblock tier, ASN and country watchers, a protocol tier, and
// a deliberately tiny unindexable tail (firehose + short prefixes) that
// lands on the scan list.
//
// Before any timing runs, an identity check replays a shared alert stream
// through SubscriptionIndex::match and the ScanOracle at the FULL
// subscription count and requires identical match sets in identical order
// — a timing number can never come from an index that dispatches wrong.
//
// Emits BENCH_subscribe.json and fails when the default-size run speeds up
// dispatch by less than 10x over scan-all.
//
//   $ ./bench_subscribe [--smoke] [--out FILE]
//     --smoke   20k subscriptions + short stream (CI wiring check; the
//               10x gate only applies to the default size)
//     --out F   baseline path (default BENCH_subscribe.json)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/alert.h"
#include "subscribe/dispatcher.h"
#include "subscribe/index.h"
#include "subscribe/oracle.h"

namespace {

using namespace dosm;
using clock_type = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution

/// The watcher mix, as fractions of the total (remainder goes to /32).
struct Mix {
  std::size_t slash24 = 0;
  std::size_t asn = 0;
  std::size_t country = 0;
  std::size_t proto = 0;
  std::size_t scan = 0;  // firehose + /8 — the unindexable tail
};

Mix mix_for(std::size_t total) {
  Mix mix;
  mix.slash24 = total / 4;            // 25% netblock watchers
  mix.asn = (total * 15) / 100;       // 15% ASN watchers
  mix.country = total / 10;           // 10% country watchers
  mix.proto = total / 100;            // 1% protocol watchers (2 hot values —
                                      // any bigger tier and every alert
                                      // would fan out to a fixed fraction
                                      // of ALL watchers, which no posting
                                      // scheme can make sublinear)
  mix.scan = total / 1000;            // 0.1% scan-list tail (small by design)
  return mix;
}

meta::CountryCode random_country(Rng& rng) {
  const char code[2] = {static_cast<char>('A' + rng.next_below(26)),
                        static_cast<char>('A' + rng.next_below(26))};
  return meta::CountryCode(std::string_view(code, 2));
}

/// Victim space: 2^20 addresses under 10.0.0.0/12, so /32 watchers are
/// sparse hits and /24 watchers cluster (4096 distinct /24s).
constexpr std::uint32_t kVictimBase = 0x0a000000u;
constexpr std::uint32_t kVictimSpace = 1u << 20;

subscribe::Predicate random_subscription(Rng& rng, std::size_t i,
                                         const Mix& mix) {
  subscribe::Predicate p;
  if (i < mix.slash24) {
    p.match_prefix(net::Prefix(
        net::Ipv4Addr{kVictimBase + (static_cast<std::uint32_t>(
                                         rng.next_below(kVictimSpace >> 8))
                                     << 8)},
        24));
  } else if (i < mix.slash24 + mix.asn) {
    p.match_asn(
        static_cast<meta::Asn>(64512 + rng.next_below(16384)));
  } else if (i < mix.slash24 + mix.asn + mix.country) {
    p.match_country(random_country(rng));
  } else if (i < mix.slash24 + mix.asn + mix.country + mix.proto) {
    p.match_proto(rng.bernoulli(0.5) ? 6 : 17);
    if (rng.bernoulli(0.5)) p.match_kind(core::AlertKind::kNewAttack);
  } else if (i < mix.slash24 + mix.asn + mix.country + mix.proto + mix.scan) {
    if (rng.bernoulli(0.5))
      p.match_prefix(net::Prefix(net::Ipv4Addr{kVictimBase}, 8));
    // else firehose
  } else {
    p.match_prefix(net::Prefix(
        net::Ipv4Addr{kVictimBase +
                      static_cast<std::uint32_t>(rng.next_below(kVictimSpace))},
        32));
  }
  return p;
}

core::Alert random_alert(Rng& rng) {
  if (rng.bernoulli(0.1)) {
    return core::spike_alert(rng.bernoulli(0.5)
                                 ? core::AlertKind::kAttackSpike
                                 : core::AlertKind::kTargetSpike,
                             static_cast<int>(rng.next_below(731)),
                             rng.uniform(100.0, 5000.0), 80.0);
  }
  core::AttackEvent event;
  event.target = net::Ipv4Addr{
      kVictimBase + static_cast<std::uint32_t>(rng.next_below(kVictimSpace))};
  event.start = rng.uniform(0.0, 1e6);
  event.end = event.start + rng.uniform(60.0, 3600.0);
  event.intensity = rng.uniform(1.0, 1000.0);
  event.ip_proto = rng.bernoulli(0.5) ? 6 : 17;
  event.top_port = rng.bernoulli(0.5) ? 80 : 53;
  return core::event_alert(
      event, static_cast<int>(rng.next_below(731)),
      static_cast<meta::Asn>(64512 + rng.next_below(16384)),
      random_country(rng));
}

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_subscribe.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_subscribe [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  const std::size_t total = smoke ? 20'000 : 1'000'000;
  const std::size_t identity_alerts = smoke ? 40 : 100;
  const std::size_t index_alerts = smoke ? 400 : 2'000;
  const std::size_t scan_alerts = smoke ? 20 : 50;
  const std::size_t dispatch_alerts = smoke ? 50 : 200;

  bench::print_header(
      "Subscription dispatch: posting index vs scan-all at " +
          std::to_string(total) + " watchers",
      "push-based watch layer for the §9 near-realtime loop; no paper "
      "table — baseline for BENCH_subscribe.json");

  Rng rng(20170301);
  const Mix mix = mix_for(total);
  std::vector<subscribe::Predicate> predicates;
  predicates.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    predicates.push_back(random_subscription(rng, i, mix));

  subscribe::SubscriptionIndex index;
  subscribe::ScanOracle oracle;
  for (std::size_t i = 0; i < total; ++i) {
    const auto id = static_cast<subscribe::SubscriptionId>(i + 1);
    index.insert(id, predicates[i]);
    oracle.insert(id, predicates[i]);
  }
  std::cerr << "[bench] indexed " << index.size() << " subscriptions ("
            << index.scan_list_size() << " on the scan list)\n";
  const auto lookup =
      [&predicates](subscribe::SubscriptionId id) -> const subscribe::Predicate& {
    return predicates[id - 1];
  };

  // One alert stream drives the identity check and both timed paths, so
  // the two sides always see the same work.
  Rng alert_rng(0xa1e47u);
  std::vector<core::Alert> stream;
  stream.reserve(index_alerts);
  for (std::size_t i = 0; i < index_alerts; ++i)
    stream.push_back(random_alert(alert_rng));

  // --- Identity check (must pass before any timing) --------------------
  {
    std::vector<subscribe::SubscriptionId> via_index;
    std::vector<subscribe::SubscriptionId> via_oracle;
    for (std::size_t i = 0; i < identity_alerts; ++i) {
      via_index.clear();
      via_oracle.clear();
      index.match(stream[i], lookup, via_index);
      oracle.match(stream[i], via_oracle);
      if (via_index != via_oracle) {
        std::cerr << "bench_subscribe: identity check FAILED on alert " << i
                  << " (index " << via_index.size() << " matches, oracle "
                  << via_oracle.size() << ")\n";
        return 1;
      }
    }
    std::cout << "identity check: " << identity_alerts
              << " alerts match identically through index and scan oracle\n";
  }

  // --- Timed match: posting index --------------------------------------
  std::vector<subscribe::SubscriptionId> out;
  std::uint64_t index_matches = 0;
  const auto t_index = clock_type::now();
  for (const core::Alert& alert : stream) {
    out.clear();
    index.match(alert, lookup, out);
    index_matches += out.size();
  }
  const double index_s = seconds_since(t_index);
  const double index_us =
      index_s * 1e6 / static_cast<double>(stream.size());

  // --- Timed match: scan-all baseline (fewer alerts; it is the slow side)
  std::uint64_t scan_matches = 0;
  const auto t_scan = clock_type::now();
  for (std::size_t i = 0; i < scan_alerts; ++i) {
    out.clear();
    oracle.match(stream[i], out);
    scan_matches += out.size();
  }
  const double scan_s = seconds_since(t_scan);
  const double scan_us = scan_s * 1e6 / static_cast<double>(scan_alerts);
  const double speedup = index_us > 0.0 ? scan_us / index_us : 0.0;

  // --- End-to-end dispatch through the Dispatcher ----------------------
  // The full path: match + coalescing stage + bounded-queue tick, at the
  // same watcher count. max_pending is small so the drop policy runs too.
  subscribe::DispatcherConfig dispatcher_config;
  dispatcher_config.max_pending = 16;
  subscribe::Dispatcher dispatcher(dispatcher_config);
  for (const auto& predicate : predicates) dispatcher.subscribe(predicate);
  const auto t_dispatch = clock_type::now();
  for (std::size_t i = 0; i < dispatch_alerts; ++i) {
    dispatcher.on_alert(stream[i]);
    if (i % 16 == 15) dispatcher.tick();
  }
  dispatcher.tick();
  const double dispatch_s = seconds_since(t_dispatch);
  const double alerts_per_s =
      static_cast<double>(dispatch_alerts) / dispatch_s;

  TextTable table({"metric", "value"});
  table.add_row({"subscriptions", std::to_string(total)});
  table.add_row({"scan_list", std::to_string(index.scan_list_size())});
  table.add_row({"index_us_per_alert", fixed(index_us, 2)});
  table.add_row({"scan_us_per_alert", fixed(scan_us, 2)});
  table.add_row({"speedup", fixed(speedup, 1) + "x"});
  table.add_row({"matches_per_alert",
                 fixed(static_cast<double>(index_matches) /
                           static_cast<double>(stream.size()),
                       1)});
  table.add_row({"dispatch_alerts_per_s", fixed(alerts_per_s, 0)});
  std::cout << table;

  bench::JsonValue root;
  root.set("bench", "subscribe")
      .set("smoke", smoke)
      .set("subscriptions", static_cast<std::uint64_t>(total))
      .set("scan_list", static_cast<std::uint64_t>(index.scan_list_size()))
      .set("identity_check", true)
      .set("identity_alerts", static_cast<std::uint64_t>(identity_alerts))
      .set("index_alerts", static_cast<std::uint64_t>(stream.size()))
      .set("scan_alerts", static_cast<std::uint64_t>(scan_alerts))
      .set("index_matches", index_matches)
      .set("scan_matches", scan_matches)
      .set("index_us_per_alert", index_us)
      .set("scan_us_per_alert", scan_us)
      .set("speedup", speedup)
      .set("dispatch_alerts", static_cast<std::uint64_t>(dispatch_alerts))
      .set("dispatch_alerts_per_s", alerts_per_s)
      .set("dispatched_total", dispatcher.alerts_dispatched());
  bench::write_json(out_path, root);

  if (!smoke && speedup < 10.0) {
    std::cerr << "bench_subscribe: " << fixed(speedup, 1)
              << "x is below the 10x index-vs-scan-all baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_subscribe: " << e.what() << "\n";
  return 1;
}
