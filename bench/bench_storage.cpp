// Tiered-storage bench: DOSARCH1 compression ratio and cold-read query
// latency against the fully resident baseline.
//
// The workload is archive-shaped: second-granularity start times on a fixed
// cadence, whole-second durations, and 0.25-quantized intensities — the
// shapes the column codecs (delta+varint, dictionary, bitpack, scaled
// delta) are built for, and the shapes real ingest feeds the archiver.
//
// Emits BENCH_storage.json. Before any timing, every query in the suite is
// cross-checked hot vs cold vs in-memory — counts, daily series, top-k,
// country shares (exact doubles), and global row ids — so a tiering
// correctness regression fails the bench outright (same policy as
// bench_incremental's identity check).
//
// Gates:
//   compression_ratio >= 3.0   raw 42 B/row SoA vs archive bytes. A pure
//                              function of the workload, so it gates in
//                              --smoke too.
//   cold_warm <= 3x hot        cache-resident cold reads must stay within
//                              noise of hot reads (timing: skipped in
//                              --smoke, where CI jitter dominates).
//
//   $ ./bench_storage [--smoke] [--out FILE]
//     --smoke   small workload + no timing gate (CI wiring check)
//     --out F   baseline path (default BENCH_storage.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/build_context.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "storage/archive.h"
#include "storage/metrics.h"
#include "storage/tiered.h"

namespace {

using namespace dosm;
using clock_type = std::chrono::steady_clock;  // lint:allow(wall-clock): benchmarks time real execution

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

struct Workload {
  StudyWindow window;
  std::vector<core::AttackEvent> events;
};

/// Deterministic archive-shaped events: integral-second starts on a fixed
/// cadence, whole-second durations, 0.25-step intensities. No Rng — the
/// compression ratio must be a pure function of (days, count).
Workload make_workload(int days, int count) {
  Workload w;
  w.window.end = civil_from_days(days_from_civil(w.window.start) + days - 1);
  const double t0 = static_cast<double>(w.window.start_time());
  const double span = static_cast<double>(days) * kSecondsPerDay;
  const double stride =
      std::max(1.0, std::floor(span * 0.9 / static_cast<double>(count)));
  w.events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::AttackEvent event;
    event.target = net::Ipv4Addr(
        static_cast<std::uint8_t>(10 + i % 8),
        static_cast<std::uint8_t>((i / 11) % 32),
        static_cast<std::uint8_t>((i / 7) % 64),
        static_cast<std::uint8_t>(i % 251));
    event.start = t0 + static_cast<double>(i) * stride;
    event.end = event.start + 60.0 + (i % 97) * 30.0;
    event.source =
        i % 3 ? core::EventSource::kTelescope : core::EventSource::kHoneypot;
    event.intensity = 0.25 * (1 + i % 2000);
    if (event.source == core::EventSource::kTelescope) {
      const std::uint16_t ports[] = {0, 53, 80, 123, 443};
      event.top_port = ports[i % 5];
      event.ip_proto = i % 5 ? 6 : 17;
    }
    w.events.push_back(event);
  }
  return w;
}

/// The timed (and identity-checked) query suite: one of each access shape.
std::vector<query::Query> query_suite(const StudyWindow& window) {
  const double t0 = static_cast<double>(window.start_time());
  const double span =
      static_cast<double>(window.num_days()) * kSecondsPerDay;
  std::vector<query::Query> queries;
  queries.emplace_back();  // full scan
  query::Query by_time;
  by_time.between(t0 + 0.25 * span, t0 + 0.45 * span);
  queries.push_back(by_time);
  query::Query by_port;
  by_port.on_port(53);
  queries.push_back(by_port);
  query::Query mixed;
  mixed.from_source(core::SourceFilter::kTelescope);
  mixed.between(t0 + 0.1 * span, t0 + 0.8 * span);
  mixed.at_least(100.0);
  queries.push_back(mixed);
  return queries;
}

/// True when every aggregation (and the global row ids) agrees exactly.
bool identical(const query::Snapshot& expected, const query::Snapshot& actual,
               const query::Query& q) {
  if (actual.count(q) != expected.count(q)) return false;
  if (actual.unique_targets(q) != expected.unique_targets(q)) return false;
  const auto expected_daily = expected.daily_attacks(q);
  const auto actual_daily = actual.daily_attacks(q);
  if (actual_daily.num_days() != expected_daily.num_days()) return false;
  for (int d = 0; d < expected_daily.num_days(); ++d)
    if (actual_daily.at(d) != expected_daily.at(d)) return false;
  if (actual.top_targets(q, 10) != expected.top_targets(q, 10)) return false;
  if (actual.top_asns(q, 10) != expected.top_asns(q, 10)) return false;
  const auto expected_countries = expected.country_ranking(q);
  const auto actual_countries = actual.country_ranking(q);
  if (actual_countries.size() != expected_countries.size()) return false;
  for (std::size_t i = 0; i < expected_countries.size(); ++i) {
    if (actual_countries[i].country != expected_countries[i].country ||
        actual_countries[i].targets != expected_countries[i].targets ||
        actual_countries[i].share != expected_countries[i].share)
      return false;
  }
  return actual.match_rows(q) == expected.match_rows(q);
}

/// One pass over the whole suite; returns elapsed seconds.
double run_suite(const query::Snapshot& snap,
                 const std::vector<query::Query>& queries,
                 std::uint64_t& sink) {
  const auto t0 = clock_type::now();
  for (const auto& q : queries) {
    sink += snap.count(q);
    sink += snap.unique_targets(q);
    sink += static_cast<std::uint64_t>(snap.country_ranking(q).size());
  }
  return seconds_since(t0);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_storage [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  const int days = smoke ? 14 : 60;
  const int count = smoke ? 8000 : 300000;
  const int segment_days = smoke ? 3 : 7;
  bench::print_header(
      "Tiered storage: DOSARCH1 compression + cold-read latency",
      "storage-layer addition; no paper table — baseline for "
      "BENCH_storage.json");
  const Workload w = make_workload(days, count);
  std::cerr << "[bench] " << w.events.size() << " events over " << days
            << " days, segment_days=" << segment_days << "\n";

  const meta::PrefixToAsMap pfx2as;
  const meta::GeoDatabase geo;
  query::BuildContext build_ctx{pfx2as, geo, 1, segment_days};
  const auto in_memory =
      query::Snapshot::build(w.window, w.events, build_ctx);

  // --- Archive write + compression ratio -------------------------------
  const std::string archive_path =
      (std::filesystem::temp_directory_path() / "bench_storage.dosarch")
          .string();
  const auto write_t0 = clock_type::now();
  const std::uint64_t file_bytes =
      storage::write_archive(archive_path, *in_memory);
  const double write_s = seconds_since(write_t0);
  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(w.events.size()) * 42u;
  const double ratio = static_cast<double>(raw_bytes) /
                       static_cast<double>(file_bytes);

  // --- Identity cross-check BEFORE any timing --------------------------
  // Hot (all segments resident) and cold (all segments behind the cache)
  // must both answer every suite query byte-identically to the in-memory
  // snapshot.
  const std::vector<query::Query> queries = query_suite(w.window);
  query::BuildContext hot_ctx{pfx2as, geo};
  hot_ctx.hot_days = days + 1;
  query::BuildContext cold_ctx{pfx2as, geo};
  cold_ctx.hot_days = 0;
  cold_ctx.cold_cache_bytes = 256u << 20;
  {
    const auto hot = storage::open_tiered(archive_path, hot_ctx);
    const auto cold = storage::open_tiered(archive_path, cold_ctx);
    for (const auto& q : queries) {
      if (!identical(*in_memory, *hot, q) || !identical(*in_memory, *cold, q)) {
        std::cerr << "bench_storage: tiered snapshot disagrees with "
                     "in-memory on " << query::to_string(q) << "\n";
        std::remove(archive_path.c_str());
        return 1;
      }
    }
    std::cerr << "[bench] identity check passed: hot == cold == in-memory "
              << "across " << queries.size() << " queries\n";
  }

  // --- Timing -----------------------------------------------------------
  const int passes = smoke ? 3 : 8;
  std::uint64_t sink = 0;

  // Hot baseline: everything resident.
  const auto hot = storage::open_tiered(archive_path, hot_ctx);
  std::vector<double> hot_s;
  for (int p = 0; p < passes; ++p) hot_s.push_back(run_suite(*hot, queries, sink));

  // Cold first pass: a fresh tiered snapshot pages every touched segment
  // in from disk (decode cost included). Later passes hit the LRU cache.
  const storage::Metrics& sm = storage::Metrics::get();
  const std::uint64_t loads_before = sm.segment_loads.value();
  const std::uint64_t hits_before = sm.cache_hits.value();
  const auto cold = storage::open_tiered(archive_path, cold_ctx);
  const double cold_first_s = run_suite(*cold, queries, sink);
  std::vector<double> cold_warm_s;
  for (int p = 0; p < passes; ++p)
    cold_warm_s.push_back(run_suite(*cold, queries, sink));
  const std::uint64_t loads = sm.segment_loads.value() - loads_before;
  const std::uint64_t hits = sm.cache_hits.value() - hits_before;

  std::remove(archive_path.c_str());

  const double hot_ms = mean(hot_s) * 1e3;
  const double cold_warm_ms = mean(cold_warm_s) * 1e3;
  const double warm_vs_hot = hot_ms > 0.0 ? cold_warm_ms / hot_ms : 0.0;

  std::cout << "events:            " << w.events.size() << "\n"
            << "segments:          " << in_memory->num_segments() << "\n"
            << "archive bytes:     " << file_bytes << " (raw SoA "
            << raw_bytes << ")\n"
            << "compression:       " << fixed(ratio, 2) << "x\n"
            << "archive write:     " << fixed(write_s * 1e3, 2) << " ms\n"
            << "hot suite:         " << fixed(hot_ms, 3) << " ms/pass\n"
            << "cold first pass:   " << fixed(cold_first_s * 1e3, 3)
            << " ms (" << loads << " segment loads)\n"
            << "cold warm:         " << fixed(cold_warm_ms, 3) << " ms/pass ("
            << hits << " cache hits, " << fixed(warm_vs_hot, 2)
            << "x hot)\n";

  bench::JsonValue root;
  root.set("bench", "storage")
      .set("smoke", smoke)
      .set("events", static_cast<std::uint64_t>(w.events.size()))
      .set("days", static_cast<std::uint64_t>(days))
      .set("segment_days", static_cast<std::uint64_t>(segment_days))
      .set("segments",
           static_cast<std::uint64_t>(in_memory->num_segments()))
      .set("archive_bytes", file_bytes)
      .set("raw_bytes", raw_bytes)
      .set("compression_ratio", ratio)
      .set("write_ms", write_s * 1e3)
      .set("hot_suite_ms", hot_ms)
      .set("cold_first_pass_ms", cold_first_s * 1e3)
      .set("cold_warm_ms", cold_warm_ms)
      .set("cold_warm_vs_hot", warm_vs_hot)
      .set("segment_loads", loads)
      .set("cache_hits", hits)
      .set("checksum", sink);
  bench::write_json(out_path, root);

  if (ratio < 3.0) {
    std::cerr << "bench_storage: compression " << fixed(ratio, 2)
              << "x is below the 3x baseline\n";
    return 1;
  }
  if (!smoke && warm_vs_hot > 3.0) {
    std::cerr << "bench_storage: cache-warm cold reads are "
              << fixed(warm_vs_hot, 2) << "x hot (limit 3x)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  return run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_storage: " << e.what() << "\n";
  return 1;
}
