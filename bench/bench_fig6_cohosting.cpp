// Figure 6 — Web-site associations with attacked IPs: the co-hosting group
// histogram (how many sites shared each attacked hosting IP at the time of
// its first attack).
#include "bench_common.h"
#include "core/impact.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 6: co-hosting groups of attacked target IPs",
      "n=1: 210,966 IPs; 1<n<=10: 199,369; 10-100: 110,416; 100-1k: 42,500; "
      "1k-10k: 7,283; 10k-100k: 1,028; 100k-1M: 429; 1M-3.6M: 169");

  const auto& world = bench::shared_world();
  const core::ImpactAnalysis impact(world.store, world.dns);
  const auto& hist = impact.cohosting_histogram();

  // Paper bins at full scale (210M domains); ours is ~1/3500 scale, so the
  // upper bins shift left by ~3.5 decades — the shape target is the decay.
  const double paper[] = {210966, 199369, 110416, 42500, 7283, 1028, 429, 169};

  TextTable table({"co-hosting bin", "target IPs", "share", "paper IPs",
                   "paper share"});
  double paper_total = 0;
  for (const double p : paper) paper_total += p;
  for (std::size_t i = 0; i < hist.num_bins(); ++i) {
    table.add_row({hist.bin_label(i), std::to_string(hist.bin(i)),
                   percent(double(hist.bin(i)) / double(hist.total()), 1),
                   human_count(paper[i], 0), percent(paper[i] / paper_total, 1)});
  }
  std::cout << table;

  std::cout << "\nWeb-hosting targets among attacked IPs: "
            << impact.web_hosting_targets() << " (paper: 572k of 6.34M = 9%)\n";
  std::cout << "Shape: counts decay with group size (n=1 largest): "
            << (hist.bin(0) >= hist.bin(1) && hist.bin(1) >= hist.bin(3)
                    ? "holds"
                    : "VIOLATED")
            << "\n";
  return 0;
}
