// Ablations of the design choices DESIGN.md calls out:
//   1. Moore classification thresholds: event counts under sweeps of the
//      packet/duration/rate thresholds and the flow timeout.
//   2. Honeypot fleet size: the paper's claim that 24 instances suffice to
//      catch most reflection attacks.
//   3. Two-tier fidelity: detection agreement between the packet-level
//      pipeline and the analytic observation tier on shared ground truth.
#include "bench_common.h"
#include "amppot/fleet.h"
#include "sim/observe.h"
#include "telescope/pipeline.h"
#include "telescope/synthesizer.h"

namespace {

using namespace dosm;

// A mixed ground-truth population for the threshold sweeps: steady attacks
// plus pulsed ones (two bursts separated by a 240 s lull) that the flow
// timeout either merges (>=300 s) or splits (60 s) into separate events.
std::vector<telescope::SpoofedAttackSpec> sweep_attacks(Rng& rng, int n) {
  std::vector<telescope::SpoofedAttackSpec> specs;
  for (int i = 0; i < n; ++i) {
    telescope::SpoofedAttackSpec spec;
    spec.victim = net::Ipv4Addr(0x0a000000u + static_cast<std::uint32_t>(i));
    spec.start = rng.uniform(0.0, 43200.0);
    spec.duration_s = rng.lognormal(6.12, 1.9);
    spec.victim_pps = 256.0 * rng.lognormal(0.5, 2.0);
    spec.ports = {80};
    specs.push_back(spec);
  }
  for (int i = 0; i < 30; ++i) {
    telescope::SpoofedAttackSpec burst;
    burst.victim =
        net::Ipv4Addr(0x0c000000u + static_cast<std::uint32_t>(i));
    burst.start = rng.uniform(50000.0, 80000.0);
    burst.duration_s = 300.0;
    burst.victim_pps = 256.0 * 50.0;
    burst.ports = {443};
    specs.push_back(burst);
    burst.start += burst.duration_s + 240.0;  // second pulse after the lull
    specs.push_back(burst);
  }
  return specs;
}

void threshold_sweep() {
  print_section(std::cout, "Ablation 1: Moore thresholds");
  Rng rng(404);
  const auto specs = sweep_attacks(rng, 150);
  telescope::TelescopeSynthesizer synthesizer(405);
  const auto packets =
      synthesizer.synthesize(specs, 0.0, 2.0 * 86400.0,
                             {.scan_pps = 30.0, .misconfig_pps = 10.0});
  std::cout << "ground truth: " << specs.size() << " attacks, "
            << packets.size() << " captured packets\n";

  TextTable table({"min_pkts", "min_dur", "min_pps", "timeout", "events"});
  struct Row {
    telescope::ClassifierThresholds t;
    double timeout;
  };
  const Row rows[] = {
      {{25, 60.0, 0.5}, 300.0},   // paper defaults
      {{5, 60.0, 0.5}, 300.0},    // relaxed packets
      {{100, 60.0, 0.5}, 300.0},  // strict packets
      {{25, 10.0, 0.5}, 300.0},   // relaxed duration
      {{25, 300.0, 0.5}, 300.0},  // strict duration
      {{25, 60.0, 0.1}, 300.0},   // relaxed rate
      {{25, 60.0, 2.0}, 300.0},   // strict rate
      {{25, 60.0, 0.5}, 60.0},    // short flow timeout (splits attacks)
      {{25, 60.0, 0.5}, 1800.0},  // long flow timeout (merges attacks)
  };
  for (const auto& row : rows) {
    telescope::Pipeline pipeline;
    auto& rsdos =
        pipeline.emplace_plugin<telescope::RsdosPlugin>(row.t, row.timeout);
    pipeline.replay(packets);
    pipeline.finish();
    table.add_row({std::to_string(row.t.min_packets),
                   fixed(row.t.min_duration_s, 0) + "s",
                   fixed(row.t.min_max_pps, 1), fixed(row.timeout, 0) + "s",
                   std::to_string(rsdos.events().size())});
  }
  std::cout << table;
  std::cout << "Expectation: relaxing any threshold admits more events; the\n"
               "short flow timeout splits intermittent attacks into several\n"
               "events; the paper's conservative defaults sit in between.\n";
}

void fleet_size_sweep() {
  print_section(std::cout,
                "Ablation 2: honeypot fleet size (24 suffice, [7])");
  TextTable table({"fleet size", "attacks detected", "share of 120"});
  for (const int size : {1, 2, 4, 8, 16, 24}) {
    amppot::HoneypotFleet fleet(777, size);
    Rng rng(778);
    std::vector<amppot::ReflectionAttackSpec> specs;
    for (int i = 0; i < 120; ++i) {
      amppot::ReflectionAttackSpec spec;
      spec.victim = net::Ipv4Addr(0x0b000000u + static_cast<std::uint32_t>(i));
      spec.start = rng.uniform(0.0, 43200.0);
      spec.duration_s = 600.0;
      spec.per_reflector_rps = 2.0;
      // The attacker scans for reflectors; each honeypot lands on the list
      // with probability ~0.8 regardless of how many we deploy.
      spec.honeypots_hit = static_cast<int>(rng.binomial(
          static_cast<std::uint64_t>(size), 0.8));
      specs.push_back(spec);
    }
    fleet.run(specs, 0.0, 86400.0);
    const auto events = fleet.harvest();
    table.add_row({std::to_string(size), std::to_string(events.size()),
                   percent(double(events.size()) / 120.0, 1)});
  }
  std::cout << table;
  std::cout << "Expectation: coverage saturates quickly — a handful of\n"
               "instances already catches most attacks; 24 is comfortably\n"
               "past the knee (diminishing returns), matching [7].\n";
}

void tier_agreement() {
  print_section(std::cout, "Ablation 3: packet tier vs analytic tier");
  Rng truth_rng(901);
  int agree = 0, packet_only = 0, analytic_only = 0;
  constexpr int kTrials = 60;
  for (int i = 0; i < kTrials; ++i) {
    const double victim_pps = 256.0 * truth_rng.lognormal(0.0, 2.0);
    const double duration = truth_rng.lognormal(6.0, 1.2);

    telescope::SpoofedAttackSpec spec;
    spec.victim = net::Ipv4Addr(9, 9, 9, 9);
    spec.start = 1000.0;
    spec.duration_s = duration;
    spec.victim_pps = victim_pps;
    spec.ports = {80};
    telescope::TelescopeSynthesizer synthesizer(static_cast<std::uint64_t>(902 + i));
    const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 5e5);
    telescope::Pipeline pipeline;
    auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
    pipeline.replay(packets);
    pipeline.finish();
    const bool packet_detected = !rsdos.events().empty();

    sim::GroundTruthAttack attack;
    attack.kind = sim::AttackKind::kDirect;
    attack.target = spec.victim;
    attack.start = spec.start;
    attack.duration_s = duration;
    attack.victim_pps = victim_pps;
    attack.ports = {80};
    Rng observe_rng(static_cast<std::uint64_t>(1000 + i));
    const bool analytic_detected =
        sim::observe_telescope(attack, observe_rng).has_value();

    if (packet_detected == analytic_detected)
      ++agree;
    else if (packet_detected)
      ++packet_only;
    else
      ++analytic_only;
  }
  std::cout << "verdict agreement: " << agree << "/" << kTrials << " ("
            << percent(double(agree) / kTrials, 1) << "); packet-only "
            << packet_only << ", analytic-only " << analytic_only << "\n";
  std::cout << "Disagreements cluster at the detection threshold where both\n"
               "tiers are coin-flips by construction (Poisson sampling).\n";
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design-choice sensitivity checks");
  threshold_sweep();
  fleet_size_sweep();
  tier_agreement();
  return 0;
}
