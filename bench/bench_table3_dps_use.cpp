// Table 3 — DDoS Protection Service use: Web sites per provider, detected
// from DNS fingerprints exactly as the paper's methodology does.
#include "bench_common.h"
#include "dps/classifier.h"
#include "dps/migration.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Table 3: DDoS Protection Service use",
      "Neustar 10.78M, DOSarrest 7.04M, Akamai 5.86M, Verisign 4.34M, "
      "CloudFlare 4.27M, Incapsula 3.78M, F5 3.58M, CenturyLink 0.87M, "
      "Level 3 0.47M, VirtualRoad <100");

  const auto& world = bench::shared_world();
  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const auto counts = dps::provider_customer_counts(timelines, world.providers);

  const std::map<std::string, double> paper{
      {"Akamai", 5.86e6},   {"CenturyLink", 0.87e6}, {"CloudFlare", 4.27e6},
      {"DOSarrest", 7.04e6}, {"F5", 3.58e6},          {"Incapsula", 3.78e6},
      {"Level 3", 0.47e6},  {"Neustar", 10.78e6},    {"Verisign", 4.34e6},
      {"VirtualRoad", 50.0}};

  double paper_total = 0.0;
  std::uint64_t measured_total = 0;
  for (const auto& [name, sites] : paper) paper_total += sites;
  for (const auto& provider : world.providers.all())
    measured_total += counts[provider.id];

  TextTable table(
      {"provider", "#Web sites", "share", "paper #", "paper share"});
  // Rank by measured count, descending.
  std::vector<dps::ProviderId> order;
  for (const auto& provider : world.providers.all()) order.push_back(provider.id);
  std::sort(order.begin(), order.end(), [&](auto a, auto b) {
    return counts[a] > counts[b];
  });
  for (const auto id : order) {
    const auto& provider = world.providers.provider(id);
    const double paper_sites = paper.at(provider.name);
    table.add_row({provider.name, human_count(double(counts[id])),
                   percent(double(counts[id]) / double(measured_total), 1),
                   human_count(paper_sites),
                   percent(paper_sites / paper_total, 1)});
  }
  std::cout << table;

  // Shape checks: Neustar leads, VirtualRoad is negligible.
  const auto neustar = *world.providers.find("Neustar");
  const auto virtualroad = *world.providers.find("VirtualRoad");
  bool neustar_leads = true;
  for (const auto id : order)
    if (counts[id] > counts[neustar]) neustar_leads = false;
  std::cout << "\nShape: Neustar leads: " << (neustar_leads ? "yes" : "NO")
            << "; VirtualRoad customers: " << counts[virtualroad]
            << " (paper: <100 at full scale)\n";
  return 0;
}
