// Figure 1 — attacks, unique targets, targeted /16s and ASNs over time, for
// the telescope, honeypot, and combined datasets (three panels). Prints the
// monthly-resampled series plus the paper's headline daily averages.
#include "bench_common.h"

namespace {

void print_panel(const dosm::core::EventStore& store,
                 dosm::core::SourceFilter filter,
                 const dosm::meta::PrefixToAsMap& pfx2as, double paper_daily) {
  using namespace dosm;
  const auto breakdown = store.daily_breakdown(filter, pfx2as);
  std::cout << "\n-- " << core::to_string(filter) << " --\n";
  std::cout << "daily avg attacks: " << fixed(breakdown.attacks.daily_mean(), 1)
            << " (paper: " << human_count(paper_daily, 1) << "/day at full "
            << "scale)\n";

  TextTable table({"month", "attacks/day", "targets/day", "/16s/day",
                   "ASNs/day"});
  const auto& window = store.window();
  int month_start = 0;
  CivilDate current = window.date_of_day(0);
  for (int d = 0; d <= breakdown.attacks.num_days(); ++d) {
    const CivilDate date = d < breakdown.attacks.num_days()
                               ? window.date_of_day(d)
                               : CivilDate{9999, 1, 1};
    if (date.year != current.year || date.month != current.month) {
      const int days = d - month_start;
      double attacks = 0, targets = 0, s16 = 0, asns = 0;
      for (int i = month_start; i < d; ++i) {
        attacks += breakdown.attacks.at(i);
        targets += breakdown.unique_targets.at(i);
        s16 += breakdown.targeted_slash16.at(i);
        asns += breakdown.targeted_asns.at(i);
      }
      char label[16];
      std::snprintf(label, sizeof(label), "%04d-%02u", current.year,
                    current.month);
      table.add_row({label, fixed(attacks / days, 1), fixed(targets / days, 1),
                     fixed(s16 / days, 1), fixed(asns / days, 1)});
      current = date;
      month_start = d;
    }
  }
  std::cout << table;
}

}  // namespace

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 1: attack events over time (3 panels)",
      "telescope avg 17.1k/day; honeypot avg 11.6k/day; combined 28.7k/day; "
      "targets spread over thousands of ASNs daily");

  const auto& world = bench::shared_world();
  const auto& pfx2as = world.population.pfx2as();
  print_panel(world.store, core::SourceFilter::kTelescope, pfx2as, 17.1e3);
  print_panel(world.store, core::SourceFilter::kHoneypot, pfx2as, 11.6e3);
  print_panel(world.store, core::SourceFilter::kCombined, pfx2as, 28.7e3);

  // Shape: combined daily targets < sum of per-source targets (same-day
  // co-targeting, the paper's note under Figure 1).
  const auto combined =
      world.store.daily_breakdown(core::SourceFilter::kCombined, pfx2as);
  const auto telescope =
      world.store.daily_breakdown(core::SourceFilter::kTelescope, pfx2as);
  const auto honeypot =
      world.store.daily_breakdown(core::SourceFilter::kHoneypot, pfx2as);
  int subadditive_days = 0, days_with_both = 0;
  for (int d = 0; d < combined.attacks.num_days(); ++d) {
    if (telescope.unique_targets.at(d) > 0 && honeypot.unique_targets.at(d) > 0) {
      ++days_with_both;
      if (combined.unique_targets.at(d) <
          telescope.unique_targets.at(d) + honeypot.unique_targets.at(d))
        ++subadditive_days;
    }
  }
  std::cout << "\nDays where combined targets < telescope+honeypot targets: "
            << subadditive_days << "/" << days_with_both
            << " (same-day co-targeting exists)\n";
  return 0;
}
