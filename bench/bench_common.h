// Shared harness for the table/figure reproduction benches.
//
// Every bench binary regenerates one paper table or figure from a shared
// full-window world (built once per process) and prints paper-reported
// values alongside measured ones. Absolute magnitudes are scaled (~1/100 of
// the paper's event volume, ~1/1000 of its namespace); the reproduction
// target is the *shape*: orderings, shares, ratios, crossovers.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "common/strings.h"
#include "common/table.h"
#include "sim/scenario.h"

namespace dosm::bench {

/// The default full-window scenario used by all reproduction benches.
inline sim::ScenarioConfig default_config() {
  sim::ScenarioConfig config;
  config.seed = 20170301;
  return config;  // paper window (731 days), default scale
}

/// Builds (once) and returns the shared world.
inline const sim::World& shared_world() {
  static const std::unique_ptr<sim::World> world = [] {
    std::cerr << "[bench] building 731-day world (this runs once)...\n";
    auto w = sim::build_world(default_config());
    std::cerr << "[bench] world ready: " << w->store.size() << " events, "
              << w->dns.num_domains() << " domains\n";
    return w;
  }();
  return *world;
}

/// Prints the standard bench header.
inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "=====================================================\n";
  std::cout << experiment << "\n";
  std::cout << "Paper: " << paper_claim << "\n";
  std::cout << "=====================================================\n";
}

}  // namespace dosm::bench
