// Shared harness for the table/figure reproduction benches.
//
// Every bench binary regenerates one paper table or figure from a shared
// full-window world (built once per process) and prints paper-reported
// values alongside measured ones. Absolute magnitudes are scaled (~1/100 of
// the paper's event volume, ~1/1000 of its namespace); the reproduction
// target is the *shape*: orderings, shares, ratios, crossovers.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "sim/scenario.h"

namespace dosm::bench {

/// The default full-window scenario used by all reproduction benches.
inline sim::ScenarioConfig default_config() {
  sim::ScenarioConfig config;
  config.seed = 20170301;
  return config;  // paper window (731 days), default scale
}

/// Builds (once) and returns the shared world.
inline const sim::World& shared_world() {
  static const std::unique_ptr<sim::World> world = [] {
    std::cerr << "[bench] building 731-day world (this runs once)...\n";
    auto w = sim::build_world(default_config());
    std::cerr << "[bench] world ready: " << w->store.size() << " events, "
              << w->dns.num_domains() << " domains\n";
    return w;
  }();
  return *world;
}

/// Prints the standard bench header.
inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "=====================================================\n";
  std::cout << experiment << "\n";
  std::cout << "Paper: " << paper_claim << "\n";
  std::cout << "=====================================================\n";
}

// ---------------------------------------------------------------------------
// Machine-readable bench baselines.
//
// Benches that feed CI regression checks emit a BENCH_<name>.json next to
// their text report. JsonValue is the minimal ordered value tree needed for
// that — objects keep insertion order so baselines diff cleanly run-to-run.
// ---------------------------------------------------------------------------

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kObject) {}  // default-constructed = empty object

  static JsonValue number(double v) {
    JsonValue j(Kind::kNumber);
    j.number_ = v;
    return j;
  }
  static JsonValue integer(std::uint64_t v) {
    JsonValue j(Kind::kInteger);
    j.integer_ = v;
    return j;
  }
  static JsonValue string(std::string v) {
    JsonValue j(Kind::kString);
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue boolean(bool v) {
    JsonValue j(Kind::kBool);
    j.bool_ = v;
    return j;
  }
  static JsonValue array() { return JsonValue(Kind::kArray); }

  /// Sets a member (this value must be an object). Returns *this to chain.
  JsonValue& set(const std::string& key, JsonValue value) {
    if (kind_ != Kind::kObject)
      throw std::logic_error("JsonValue::set on non-object");
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  JsonValue& set(const std::string& key, double v) {
    return set(key, number(v));
  }
  JsonValue& set(const std::string& key, std::uint64_t v) {
    return set(key, integer(v));
  }
  JsonValue& set(const std::string& key, const std::string& v) {
    return set(key, string(v));
  }
  JsonValue& set(const std::string& key, const char* v) {
    return set(key, string(v));
  }
  JsonValue& set(const std::string& key, bool v) {
    return set(key, boolean(v));
  }

  /// Appends an element (this value must be an array). Returns *this.
  JsonValue& push(JsonValue value) {
    if (kind_ != Kind::kArray)
      throw std::logic_error("JsonValue::push on non-array");
    items_.push_back(std::move(value));
    return *this;
  }

  std::string dump(int indent = 2) const {
    std::ostringstream out;
    write(out, indent, 0);
    return out.str();
  }

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInteger, kBool };

  explicit JsonValue(Kind kind) : kind_(kind) {}

  static void write_escaped(std::ostream& out, const std::string& s) {
    out << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default: out << c;
      }
    }
    out << '"';
  }

  void write(std::ostream& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
    switch (kind_) {
      case Kind::kObject: {
        if (members_.empty()) {
          out << "{}";
          return;
        }
        out << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out << pad;
          write_escaped(out, members_[i].first);
          out << ": ";
          members_[i].second.write(out, indent, depth + 1);
          out << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        out << close_pad << "}";
        return;
      }
      case Kind::kArray: {
        if (items_.empty()) {
          out << "[]";
          return;
        }
        out << "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out << pad;
          items_[i].write(out, indent, depth + 1);
          out << (i + 1 < items_.size() ? ",\n" : "\n");
        }
        out << close_pad << "]";
        return;
      }
      case Kind::kString: write_escaped(out, string_); return;
      case Kind::kNumber: {
        std::ostringstream num;
        num.precision(6);
        num << number_;
        const std::string text = num.str();
        out << text;
        // Keep numbers valid JSON (no bare "inf"/"nan" from ostream).
        if (text.find_first_not_of("0123456789+-.eE") != std::string::npos)
          throw std::logic_error("non-finite number in bench JSON");
        return;
      }
      case Kind::kInteger: out << integer_; return;
      case Kind::kBool: out << (bool_ ? "true" : "false"); return;
    }
  }

  Kind kind_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
  std::string string_;
  double number_ = 0.0;
  std::uint64_t integer_ = 0;
  bool bool_ = false;
};

/// Writes the baseline JSON (trailing newline included) and logs the path.
inline void write_json(const std::string& path, const JsonValue& root) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << root.dump() << "\n";
  std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace dosm::bench
