// Figure 8 — the Web-site taxonomy tree: attack observed x preexisting DPS
// customer x migrating.
#include "bench_common.h"
#include "core/taxonomy.h"
#include "dps/classifier.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 8: Web-site taxonomy",
      "210M sites: 64% attacked; attacked: 18.6% preexisting, 4.31% "
      "migrating, 81.3% non-migrating(-ish); unattacked: 0.89% preexisting, "
      "3.32% migrating");

  const auto& world = bench::shared_world();
  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const core::ImpactAnalysis impact(world.store, world.dns);
  const auto counts = core::classify_websites(impact, timelines, world.dns);

  std::cout << render_taxonomy(counts) << "\n";

  TextTable table({"quantity", "measured", "paper"});
  auto pct = [](std::uint64_t a, std::uint64_t b) {
    return b ? percent(double(a) / double(b), 2) : std::string("n/a");
  };
  table.add_row({"attacked share", pct(counts.attacked, counts.total), "64%"});
  table.add_row({"attacked & preexisting",
                 pct(counts.attacked_preexisting, counts.attacked), "18.6%"});
  table.add_row({"attacked & migrating",
                 pct(counts.attacked_migrating, counts.attacked), "4.31%"});
  table.add_row({"unattacked & preexisting",
                 pct(counts.not_attacked_preexisting, counts.not_attacked),
                 "0.89%"});
  table.add_row({"unattacked & migrating",
                 pct(counts.not_attacked_migrating, counts.not_attacked),
                 "3.32%"});
  table.add_row({"protected-or-migrating | attacked",
                 percent(counts.protected_share_attacked(), 1), "22.1%"});
  table.add_row({"protected-or-migrating | unattacked",
                 percent(counts.protected_share_not_attacked(), 1), "4.2%"});
  std::cout << table;

  const double pre_attacked =
      double(counts.attacked_preexisting) / double(counts.attacked);
  const double pre_unattacked =
      double(counts.not_attacked_preexisting) / double(counts.not_attacked);
  const double mig_attacked =
      double(counts.attacked_migrating) / double(counts.attacked);
  const double mig_unattacked =
      double(counts.not_attacked_migrating) / double(counts.not_attacked);
  std::cout << "\nShape: preexisting concentrates in attacked sites: "
            << (pre_attacked > 2.0 * pre_unattacked ? "holds" : "VIOLATED")
            << "; migrating slightly higher when attacked: "
            << (mig_attacked > mig_unattacked ? "holds" : "VIOLATED") << "\n";
  return 0;
}
