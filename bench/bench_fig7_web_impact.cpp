// Figure 7 — Web sites on attacked IPs per day (all attacks and medium+
// intensity), the 64%-over-two-years headline, and the peak days.
#include "bench_common.h"
#include "core/impact.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 7: Web sites involved with attacks over time",
      "~4M sites/day (~3% of namespace); 64% of all sites over two years; "
      "peaks to 11.8% (GoDaddy/WordPress, Squarespace/OVH, Wix, EIG days)");

  const auto& world = bench::shared_world();
  const core::ImpactAnalysis impact(world.store, world.dns);

  const double total_sites = double(impact.web_domains());
  const auto smoothed = impact.affected_daily().smoothed(31);

  TextTable table({"quarter", "affected/day", "% of sites", "medium+/day"});
  for (int q = 0; q * 91 < impact.affected_daily().num_days(); ++q) {
    const int start = q * 91;
    const int end = std::min(start + 91, impact.affected_daily().num_days());
    double sum = 0, medium = 0;
    for (int d = start; d < end; ++d) {
      sum += impact.affected_daily().at(d);
      medium += impact.affected_daily_medium().at(d);
    }
    const int days = end - start;
    table.add_row({to_string(world.window.date_of_day(start)),
                   fixed(sum / days, 0), percent(sum / days / total_sites, 2),
                   fixed(medium / days, 0)});
  }
  std::cout << table;

  const double daily_share =
      impact.affected_daily().daily_mean() / total_sites;
  std::cout << "\nDaily average: " << fixed(impact.affected_daily().daily_mean(), 0)
            << " sites = " << percent(daily_share, 2)
            << " of the namespace (paper: ~3%)\n";
  std::cout << "Sites ever on attacked IPs: " << impact.attacked_domains()
            << " of " << impact.web_domains() << " = "
            << percent(impact.attacked_domain_fraction(), 1)
            << " (paper: 64%)\n";
  std::cout << "Medium+ daily average: "
            << fixed(impact.affected_daily_medium().daily_mean(), 0) << " = "
            << percent(impact.affected_daily_medium().daily_mean() / total_sites, 2)
            << " (paper: 1.7M = 1.3%)\n";

  std::cout << "\nTop peak days (the paper's case-study spikes):\n";
  for (const auto& [day, count] : impact.top_peaks(4)) {
    std::cout << "  " << to_string(world.window.date_of_day(day)) << "  "
              << fixed(count, 0) << " sites = " << percent(count / total_sites, 1)
              << " of namespace (paper peaks: 11.8%, 7.6%, 8.5%, 9.2%)\n";
  }
  std::cout << "Smoothed curve max: " << percent(smoothed.max() / total_sites, 1)
            << "\n";

  // §5 protocol emphasis on Web targets.
  std::cout << "\nProtocol emphasis on Web-hosting targets:\n";
  std::cout << "  TCP share: " << percent(impact.tcp_share_on_web_targets(), 1)
            << " (paper: 93.4%, up from 79.4%)\n";
  std::cout << "  Web-port share: "
            << percent(impact.web_port_share_on_web_targets(), 1)
            << " (paper: 87.60%, up from 69.36%)\n";
  std::cout << "  NTP share: " << percent(impact.ntp_share_on_web_targets(), 1)
            << " (paper: 54.69%, up from 40.08%)\n";
  return 0;
}
