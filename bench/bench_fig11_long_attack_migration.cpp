// Figure 11 — migration delay after long (>= 4 h, honeypot-observed)
// attacks: duration helps but is not by itself decisive.
#include "bench_common.h"
#include "core/migration_analysis.h"
#include "dps/classifier.h"

int main() {
  using namespace dosm;
  bench::print_header(
      "Figure 11: migration delay after >=4h attacks",
      "67.6% migrate within a day, 76% within 5 days, ~18% take 2+ weeks "
      "(duration alone is not always the deciding factor)");

  const auto& world = bench::shared_world();
  const dps::Classifier classifier(world.providers, world.names);
  const auto timelines = dps::all_timelines(world.dns, classifier);
  const core::ImpactAnalysis impact(world.store, world.dns);
  const core::MigrationAnalysis migration(impact, timelines);

  const auto delays = migration.delays_for_long_attacks(4.0 * 3600.0);
  if (delays.empty()) {
    std::cout << "No migrating sites hit by >=4h honeypot attacks in this "
                 "run (rare at reduced scale); rerun with a different seed "
                 "or larger world.\n";
    return 0;
  }

  TextTable table({"days to migration (<=)", "CDF", "paper"});
  const std::pair<int, const char*> paper_rows[] = {
      {1, "67.6%"}, {3, "-"}, {5, "76.0%"}, {8, "-"}, {14, "~82%"}, {16, "-"}};
  for (const auto& [days, paper] : paper_rows)
    table.add_row({std::to_string(days), percent(delays.cdf(days), 1), paper});
  std::cout << table;

  std::cout << "\nSites in the >=4h class: " << delays.size() << "\n";
  std::cout << "Long-tail share (2+ weeks): " << percent(1.0 - delays.cdf(14), 1)
            << " (paper: ~18%, the eNom 101-day case)\n";

  // Contrast with duration-agnostic delays: long attacks migrate faster
  // than the average case but not as decisively as top intensity.
  const auto all = migration.delays_for_intensity_class(1.0);
  const auto top = migration.delays_for_intensity_class(0.01);
  std::cout << "Within-1-day: >=4h " << percent(delays.cdf(1), 1) << " vs all "
            << percent(all.cdf(1), 1) << " vs top-1% intensity "
            << (top.empty() ? "n/a" : percent(top.cdf(1), 1))
            << " (paper: duration helps, intensity decides)\n";
  return 0;
}
