// Regenerates tests/data/golden_v1.dosarch, the checked-in archive that
// pins the DOSARCH1 on-disk format ("readers load v1 forever").
//
// The event list here MUST stay byte-for-byte in sync with golden_events()
// in tests/storage_test.cpp: the compatibility test rebuilds the same
// events in memory and asserts every aggregation matches the archive.
// Integral timestamps and quarter-step intensities keep all columns
// platform-independent, so the emitted file is bit-stable.
//
// Usage: make_golden_archive <output-path>
// Run it only when introducing a NEW format version; never overwrite the
// v1 golden with bytes from a changed writer.
#include <cstdio>
#include <string>
#include <vector>

#include "query/build_context.h"
#include "query/snapshot.h"
#include "storage/archive.h"

namespace dosm {
namespace {

StudyWindow golden_window() {
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 13);
  return window;
}

std::vector<core::AttackEvent> golden_events() {
  const double t0 = static_cast<double>(golden_window().start_time());
  std::vector<core::AttackEvent> events;
  for (int i = 0; i < 5000; ++i) {
    core::AttackEvent event;
    event.target = net::Ipv4Addr(
        static_cast<std::uint8_t>(10 + i % 4), 0,
        static_cast<std::uint8_t>((i / 7) % 16),
        static_cast<std::uint8_t>(i % 251));
    event.start = t0 + i * 211.0;
    event.end = event.start + 120.0 + (i % 13) * 30.0;
    event.source =
        i % 3 ? core::EventSource::kTelescope : core::EventSource::kHoneypot;
    event.intensity = 0.25 * (1 + i % 400);
    if (event.source == core::EventSource::kTelescope) {
      const std::uint16_t ports[] = {0, 53, 80, 123, 443};
      event.top_port = ports[i % 5];
      event.ip_proto = i % 5 ? 6 : 17;
    }
    events.push_back(event);
  }
  return events;
}

int run(const std::string& out_path) {
  const auto events = golden_events();
  const meta::PrefixToAsMap pfx2as;
  const meta::GeoDatabase geo;
  const auto snapshot = query::Snapshot::build(
      golden_window(), events,
      query::BuildContext{pfx2as, geo, 1, /*segment_days=*/3});
  const std::uint64_t bytes = storage::write_archive(out_path, *snapshot);
  std::printf("wrote %s: %zu events, %zu segments, %llu bytes\n",
              out_path.c_str(), snapshot->size(), snapshot->num_segments(),
              static_cast<unsigned long long>(bytes));
  return 0;
}

}  // namespace
}  // namespace dosm

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_archive <output-path>\n");
    return 2;
  }
  return dosm::run(argv[1]);
}
