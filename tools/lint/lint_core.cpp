#include "lint/lint_core.h"

#include <algorithm>
#include <regex>

namespace dosm::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table. Each rule is a regex applied per line to comment/string-blanked
// text, restricted to paths matching `path_filter` (empty = everywhere).
// ---------------------------------------------------------------------------

struct Rule {
  const char* id;
  const char* detail;
  std::regex pattern;
  // Only applies to files whose relative path starts with one of these
  // prefixes; empty means the rule applies to every scanned file.
  std::vector<std::string> path_prefixes;
  // Match against the raw line instead of the comment/string-blanked one.
  // Needed for include rules: the banned path lives inside the "..." literal
  // that blanking erases. Guarded so commented-out includes stay quiet.
  bool match_raw = false;
};

// Analysis modules: results-bearing pipeline code where ownership must go
// through containers / smart pointers, never raw new/delete.
const std::vector<std::string> kAnalysisDirs = {
    "src/core/", "src/telescope/", "src/amppot/",
    "src/dps/",  "src/dns/",       "src/meta/",
    "src/storage/", "src/ingest/", "src/subscribe/",
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> r;
    const auto flags = std::regex::ECMAScript | std::regex::optimize;
    r.push_back(Rule{
        "wall-clock",
        "wall-clock time source; pipeline time must come from the simulated "
        "clock (common/time) so runs are reproducible",
        std::regex(R"(std::chrono::(system_clock|high_resolution_clock|steady_clock)|\b(gettimeofday|clock_gettime|localtime(_r)?|gmtime(_r)?|mktime)\s*\(|\btime\s*\(\s*(nullptr|NULL|0|&))",
                   flags),
        {}});
    r.push_back(Rule{
        "nondeterminism",
        "nondeterministic randomness; all randomness must flow through a "
        "seeded dosm::Rng (common/rng)",
        std::regex(R"(\b(rand|srand|rand_r|drand48|random)\s*\(|std::random_device|std::mt19937(_64)?|std::default_random_engine|std::minstd_rand0?\b)",
                   flags),
        {}});
    r.push_back(Rule{
        "unsafe-cstring",
        "banned unsafe C string/format function; use std::string / "
        "std::format / bounded operations",
        std::regex(R"(\b(strcpy|strcat|sprintf|vsprintf|gets|strtok|strncpy|strncat|scanf|sscanf|alloca)\s*\()",
                   flags),
        {}});
    r.push_back(Rule{
        "float-counter",
        "packet/byte/request counter declared as float/double; counters must "
        "be integral (std::uint64_t) so accumulation is exact",
        std::regex(R"(\b(float|double)\s+((n|num|total|cum|sum)_?(pkts?|packets?|bytes?|requests?|reqs?)|(pkts?|packets?|bytes?|requests?|reqs?)_?(count|cnt|total|sum|num|seen|sent|recvd?|rx|tx))\b)",
                   flags),
        {}});
    r.push_back(Rule{
        "raw-new-delete",
        "raw new/delete in analysis code; use containers or smart pointers",
        std::regex(R"(\bnew\s+[A-Za-z_:<]|\bnew\s*\[|\bdelete\s+[A-Za-z_*]|\bdelete\s*\[)",
                   flags),
        kAnalysisDirs});
    r.push_back(Rule{
        "include-hygiene",
        "banned include: no parent-relative paths, <bits/...>, or C-compat "
        "headers (use the <c...> equivalents)",
        std::regex(R"(#\s*include\s+("\.\./|<bits/|<(assert|ctype|errno|float|limits|locale|math|setjmp|signal|stdarg|stddef|stdio|stdint|stdlib|string|time)\.h>))",
                   flags),
        {},
        /*match_raw=*/true});
    return r;
  }();
  return kRules;
}

bool starts_with_any(std::string_view path, const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& p) {
    return path.substr(0, p.size()) == p;
  });
}

}  // namespace

std::vector<Violation> lint_source(std::string_view rel_path,
                                   std::string_view contents,
                                   const std::vector<AllowEntry>& allow) {
  std::vector<Violation> out;
  const std::string blanked = scan::blank_comments_and_literals(contents);
  const std::vector<std::string> raw_lines = scan::split_lines(contents);
  const std::vector<std::string> code_lines = scan::split_lines(blanked);
  for (const Rule& rule : rules()) {
    if (!starts_with_any(rel_path, rule.path_prefixes)) continue;
    if (scan::allowed(allow, rule.id, rel_path)) continue;
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (rule.match_raw) {
        static const std::regex kIncludeDirective(R"(^\s*#\s*include\b)");
        if (!std::regex_search(code_lines[i], kIncludeDirective)) continue;
        if (i >= raw_lines.size() || !std::regex_search(raw_lines[i], rule.pattern)) continue;
      } else {
        if (!std::regex_search(code_lines[i], rule.pattern)) continue;
      }
      if (i < raw_lines.size() && scan::has_inline_allow(raw_lines[i], "lint", rule.id))
        continue;
      out.push_back(Violation{std::string(rel_path), static_cast<int>(i) + 1,
                              rule.id, rule.detail});
    }
  }
  scan::sort_violations(out);
  return out;
}

std::vector<Violation> lint_tree(const std::string& root,
                                 const std::vector<std::string>& subdirs,
                                 const std::vector<AllowEntry>& allow) {
  std::vector<Violation> out;
  std::vector<std::string> rel_paths;
  for (const scan::SourceFile& file : scan::load_tree(root, subdirs)) {
    rel_paths.push_back(file.rel_path);
    auto file_violations = lint_source(file.rel_path, file.contents, allow);
    out.insert(out.end(), file_violations.begin(), file_violations.end());
  }
  for (const AllowEntry& e : scan::stale_entries(allow, rel_paths)) {
    out.push_back(Violation{
        "tools/lint_allowlist.txt", 0, "stale-allowlist",
        "allowlist entry '" + e.rule + " " + e.path_suffix +
            "' matches no scanned file; prune it"});
  }
  scan::sort_violations(out);
  return out;
}

}  // namespace dosm::lint
