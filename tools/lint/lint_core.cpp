#include "lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <tuple>

namespace dosm::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table. Each rule is a regex applied per line to comment/string-blanked
// text, restricted to paths matching `path_filter` (empty = everywhere).
// ---------------------------------------------------------------------------

struct Rule {
  const char* id;
  const char* detail;
  std::regex pattern;
  // Only applies to files whose relative path starts with one of these
  // prefixes; empty means the rule applies to every scanned file.
  std::vector<std::string> path_prefixes;
  // Match against the raw line instead of the comment/string-blanked one.
  // Needed for include rules: the banned path lives inside the "..." literal
  // that blanking erases. Guarded so commented-out includes stay quiet.
  bool match_raw = false;
};

// Analysis modules: results-bearing pipeline code where ownership must go
// through containers / smart pointers, never raw new/delete.
const std::vector<std::string> kAnalysisDirs = {
    "src/core/", "src/telescope/", "src/amppot/",
    "src/dps/",  "src/dns/",       "src/meta/",
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> r;
    const auto flags = std::regex::ECMAScript | std::regex::optimize;
    r.push_back(Rule{
        "wall-clock",
        "wall-clock time source; pipeline time must come from the simulated "
        "clock (common/time) so runs are reproducible",
        std::regex(R"(std::chrono::(system_clock|high_resolution_clock|steady_clock)|\b(gettimeofday|clock_gettime|localtime(_r)?|gmtime(_r)?|mktime)\s*\(|\btime\s*\(\s*(nullptr|NULL|0|&))",
                   flags),
        {}});
    r.push_back(Rule{
        "nondeterminism",
        "nondeterministic randomness; all randomness must flow through a "
        "seeded dosm::Rng (common/rng)",
        std::regex(R"(\b(rand|srand|rand_r|drand48|random)\s*\(|std::random_device|std::mt19937(_64)?|std::default_random_engine|std::minstd_rand0?\b)",
                   flags),
        {}});
    r.push_back(Rule{
        "unsafe-cstring",
        "banned unsafe C string/format function; use std::string / "
        "std::format / bounded operations",
        std::regex(R"(\b(strcpy|strcat|sprintf|vsprintf|gets|strtok|strncpy|strncat|scanf|sscanf|alloca)\s*\()",
                   flags),
        {}});
    r.push_back(Rule{
        "float-counter",
        "packet/byte/request counter declared as float/double; counters must "
        "be integral (std::uint64_t) so accumulation is exact",
        std::regex(R"(\b(float|double)\s+((n|num|total|cum|sum)_?(pkts?|packets?|bytes?|requests?|reqs?)|(pkts?|packets?|bytes?|requests?|reqs?)_?(count|cnt|total|sum|num|seen|sent|recvd?|rx|tx))\b)",
                   flags),
        {}});
    r.push_back(Rule{
        "raw-new-delete",
        "raw new/delete in analysis code; use containers or smart pointers",
        std::regex(R"(\bnew\s+[A-Za-z_:<]|\bnew\s*\[|\bdelete\s+[A-Za-z_*]|\bdelete\s*\[)",
                   flags),
        kAnalysisDirs});
    r.push_back(Rule{
        "include-hygiene",
        "banned include: no parent-relative paths, <bits/...>, or C-compat "
        "headers (use the <c...> equivalents)",
        std::regex(R"(#\s*include\s+("\.\./|<bits/|<(assert|ctype|errno|float|limits|locale|math|setjmp|signal|stdarg|stddef|stdio|stdint|stdlib|string|time)\.h>))",
                   flags),
        {},
        /*match_raw=*/true});
    return r;
  }();
  return kRules;
}

bool starts_with_any(std::string_view path, const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& p) {
    return path.substr(0, p.size()) == p;
  });
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// Blanks comments and string/char literals with spaces, preserving line
// structure so reported line numbers match the raw file.
std::string blank_comments_and_literals(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for raw string literals: )delim"
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal? Look back for R prefix.
          if (i > 0 && out[i - 1] == 'R') {
            std::size_t j = i + 1;
            while (j < out.size() && out[j] != '(') ++j;
            raw_delim = ")" + out.substr(i + 1, j - (i + 1)) + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          // Skip digit separators like 1'000'000.
          if (!(i > 0 && (std::isalnum(static_cast<unsigned char>(out[i - 1])) != 0) &&
                (std::isalnum(static_cast<unsigned char>(next)) != 0))) {
            state = State::kChar;
          }
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool allowed(const std::vector<AllowEntry>& allow, std::string_view rule,
             std::string_view rel_path) {
  return std::any_of(allow.begin(), allow.end(), [&](const AllowEntry& e) {
    return (e.rule == "*" || e.rule == rule) && ends_with(rel_path, e.path_suffix);
  });
}

bool has_inline_allow(std::string_view raw_line, std::string_view rule) {
  const std::string marker = "lint:allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string_view::npos;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

std::vector<AllowEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowEntry> entries;
  for (const std::string& line : split_lines(text)) {
    std::istringstream in(line);
    std::string rule;
    std::string suffix;
    if (!(in >> rule) || rule[0] == '#') continue;
    if (in >> suffix) entries.push_back(AllowEntry{rule, suffix});
  }
  return entries;
}

std::vector<Violation> lint_source(std::string_view rel_path,
                                   std::string_view contents,
                                   const std::vector<AllowEntry>& allow) {
  std::vector<Violation> out;
  const std::string blanked = blank_comments_and_literals(contents);
  const std::vector<std::string> raw_lines = split_lines(contents);
  const std::vector<std::string> code_lines = split_lines(blanked);
  for (const Rule& rule : rules()) {
    if (!starts_with_any(rel_path, rule.path_prefixes)) continue;
    if (allowed(allow, rule.id, rel_path)) continue;
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (rule.match_raw) {
        static const std::regex kIncludeDirective(R"(^\s*#\s*include\b)");
        if (!std::regex_search(code_lines[i], kIncludeDirective)) continue;
        if (i >= raw_lines.size() || !std::regex_search(raw_lines[i], rule.pattern)) continue;
      } else {
        if (!std::regex_search(code_lines[i], rule.pattern)) continue;
      }
      if (i < raw_lines.size() && has_inline_allow(raw_lines[i], rule.id)) continue;
      out.push_back(Violation{std::string(rel_path), static_cast<int>(i) + 1,
                              rule.id, rule.detail});
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<Violation> lint_tree(const std::string& root,
                                 const std::vector<std::string>& subdirs,
                                 const std::vector<AllowEntry>& allow) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  for (const std::string& subdir : subdirs) {
    const fs::path base = fs::path(root) / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string contents = buf.str();
      auto file_violations = lint_source(rel, contents, allow);
      out.insert(out.end(), file_violations.begin(), file_violations.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::string format_violation(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " + v.detail;
}

}  // namespace dosm::lint
