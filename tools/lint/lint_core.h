#pragma once
// dosmeter_lint — repo-specific invariant linter (see README.md).
//
// Enforces the determinism and safety rules generic tools cannot express:
//   wall-clock        no wall-clock time sources in pipeline code
//   nondeterminism    no unseeded / libc randomness outside common/rng
//   unsafe-cstring    no unbounded C string/format functions
//   float-counter     packet/byte/request counters must be integral
//   raw-new-delete    no raw new/delete in analysis code
//   include-hygiene   no parent-relative includes, C-compat headers, bits/
//
// Exceptions go through tools/lint_allowlist.txt ("rule path-suffix" lines)
// or an inline "lint:allow(rule)" comment on the offending line. The
// deeper, flow-sensitive contracts (ordered emission, lock discipline,
// exception types) live in the sibling analyzer, tools/analyze/.

#include <string>
#include <string_view>
#include <vector>

#include "scan/scan_util.h"

namespace dosm::lint {

// Line-oriented scanning, allowlist handling, and reporting are shared with
// dosmeter_analyze through tools/scan/.
using Violation = scan::Violation;
using AllowEntry = scan::AllowEntry;
using scan::format_violation;
using scan::parse_allowlist;

// Lints one file's contents. Comments and string/char literals are blanked
// before rules run, so banned tokens inside them never fire; the inline
// "lint:allow(rule)" marker is read from the raw text.
std::vector<Violation> lint_source(std::string_view rel_path,
                                   std::string_view contents,
                                   const std::vector<AllowEntry>& allow);

// Recursively lints every .h/.hpp/.cc/.cpp file under root/<subdir> for each
// subdir. Returned violations are sorted by (file, line, rule). Allowlist
// entries that match no scanned file are reported as "stale-allowlist"
// violations so dead exceptions get pruned instead of rotting.
std::vector<Violation> lint_tree(const std::string& root,
                                 const std::vector<std::string>& subdirs,
                                 const std::vector<AllowEntry>& allow);

}  // namespace dosm::lint
