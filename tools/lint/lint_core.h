#pragma once
// dosmeter_lint — repo-specific invariant linter (see README.md).
//
// Enforces the determinism and safety rules generic tools cannot express:
//   wall-clock        no wall-clock time sources in pipeline code
//   nondeterminism    no unseeded / libc randomness outside common/rng
//   unsafe-cstring    no unbounded C string/format functions
//   float-counter     packet/byte/request counters must be integral
//   raw-new-delete    no raw new/delete in analysis code
//   include-hygiene   no parent-relative includes, C-compat headers, bits/
//
// Exceptions go through tools/lint_allowlist.txt ("rule path-suffix" lines)
// or an inline "lint:allow(rule)" comment on the offending line.

#include <string>
#include <string_view>
#include <vector>

namespace dosm::lint {

struct Violation {
  std::string file;  // path relative to the scanned root, '/'-separated
  int line = 0;      // 1-based
  std::string rule;
  std::string detail;
};

struct AllowEntry {
  std::string rule;         // rule id, or "*" for any rule
  std::string path_suffix;  // matched against the end of the relative path
};

// Parses allowlist text: one "rule path-suffix" pair per line; '#' comments
// and blank lines ignored.
std::vector<AllowEntry> parse_allowlist(std::string_view text);

// Lints one file's contents. Comments and string/char literals are blanked
// before rules run, so banned tokens inside them never fire; the inline
// "lint:allow(rule)" marker is read from the raw text.
std::vector<Violation> lint_source(std::string_view rel_path,
                                   std::string_view contents,
                                   const std::vector<AllowEntry>& allow);

// Recursively lints every .h/.hpp/.cc/.cpp file under root/<subdir> for each
// subdir. Returned violations are sorted by (file, line, rule).
std::vector<Violation> lint_tree(const std::string& root,
                                 const std::vector<std::string>& subdirs,
                                 const std::vector<AllowEntry>& allow);

// Human-readable one-line rendering: "file:line: [rule] detail".
std::string format_violation(const Violation& v);

}  // namespace dosm::lint
