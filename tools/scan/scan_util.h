#pragma once
// Shared source-scanning utilities for the repo's static-checking tools
// (dosmeter_lint, dosmeter_analyze). Both tools share the same suppression
// conventions: a "<rule> <path-suffix>" allowlist file plus an inline
// "<marker>:allow(<rule>)" comment on the offending line — only the marker
// prefix ("lint" vs "analyze") differs.

#include <string>
#include <string_view>
#include <vector>

namespace dosm::scan {

struct Violation {
  std::string file;  // path relative to the scanned root, '/'-separated
  int line = 0;      // 1-based
  std::string rule;
  std::string detail;
};

struct AllowEntry {
  std::string rule;         // rule id, or "*" for any rule
  std::string path_suffix;  // matched against the end of the relative path
};

/// One source file loaded from a scan tree.
struct SourceFile {
  std::string rel_path;  // relative to the scanned root, '/'-separated
  std::string contents;
};

/// Parses allowlist text: one "rule path-suffix" pair per line; '#' comments
/// and blank lines ignored.
std::vector<AllowEntry> parse_allowlist(std::string_view text);

/// True if `rule` at `rel_path` is suppressed by some allowlist entry.
bool allowed(const std::vector<AllowEntry>& allow, std::string_view rule,
             std::string_view rel_path);

/// True if the raw line carries "<marker>:allow(<rule>)" (e.g. marker
/// "lint" -> "lint:allow(wall-clock)").
bool has_inline_allow(std::string_view raw_line, std::string_view marker,
                      std::string_view rule);

/// Allowlist entries whose path suffix matches none of `rel_paths`: stale
/// entries that outlived the file (or tree) they excepted and must be pruned.
std::vector<AllowEntry> stale_entries(const std::vector<AllowEntry>& allow,
                                      const std::vector<std::string>& rel_paths);

/// Blanks comments and string/char literals with spaces, preserving line
/// structure (and the literals' delimiting quotes) so both line numbers and
/// token boundaries survive.
std::string blank_comments_and_literals(std::string_view src);

/// Splits text into lines (no trailing '\n' on each).
std::vector<std::string> split_lines(std::string_view text);

/// Recursively loads every .h/.hpp/.cc/.cpp file under root/<subdir> for
/// each subdir, sorted by relative path so scans are deterministic.
std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& subdirs);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Sorts by (file, line, rule) — the canonical report order.
void sort_violations(std::vector<Violation>& violations);

/// Human-readable one-line rendering: "file:line: [rule] detail".
std::string format_violation(const Violation& v);

}  // namespace dosm::scan
