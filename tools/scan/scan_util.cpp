#include "scan/scan_util.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

namespace dosm::scan {

std::vector<AllowEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowEntry> entries;
  for (const std::string& line : split_lines(text)) {
    std::istringstream in(line);
    std::string rule;
    std::string suffix;
    if (!(in >> rule) || rule[0] == '#') continue;
    if (in >> suffix) entries.push_back(AllowEntry{rule, suffix});
  }
  return entries;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool allowed(const std::vector<AllowEntry>& allow, std::string_view rule,
             std::string_view rel_path) {
  return std::any_of(allow.begin(), allow.end(), [&](const AllowEntry& e) {
    return (e.rule == "*" || e.rule == rule) && ends_with(rel_path, e.path_suffix);
  });
}

bool has_inline_allow(std::string_view raw_line, std::string_view marker,
                      std::string_view rule) {
  const std::string needle =
      std::string(marker) + ":allow(" + std::string(rule) + ")";
  return raw_line.find(needle) != std::string_view::npos;
}

std::vector<AllowEntry> stale_entries(const std::vector<AllowEntry>& allow,
                                      const std::vector<std::string>& rel_paths) {
  std::vector<AllowEntry> stale;
  for (const AllowEntry& e : allow) {
    const bool matches_some_file =
        std::any_of(rel_paths.begin(), rel_paths.end(),
                    [&](const std::string& p) { return ends_with(p, e.path_suffix); });
    if (!matches_some_file) stale.push_back(e);
  }
  return stale;
}

std::string blank_comments_and_literals(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for raw string literals: )delim"
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal? Look back for R prefix.
          if (i > 0 && out[i - 1] == 'R') {
            std::size_t j = i + 1;
            while (j < out.size() && out[j] != '(') ++j;
            raw_delim = ")" + out.substr(i + 1, j - (i + 1)) + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          // Skip digit separators like 1'000'000.
          if (!(i > 0 && (std::isalnum(static_cast<unsigned char>(out[i - 1])) != 0) &&
                (std::isalnum(static_cast<unsigned char>(next)) != 0))) {
            state = State::kChar;
          }
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Blank the delimiter but keep its closing quote so the blanked
          // text still tokenizes as a balanced "" string literal.
          for (std::size_t j = i; j + 1 < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> out;
  for (const std::string& subdir : subdirs) {
    const fs::path base = fs::path(root) / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      out.push_back(SourceFile{fs::relative(entry.path(), root).generic_string(),
                               buf.str()});
    }
  }
  std::sort(out.begin(), out.end(), [](const SourceFile& a, const SourceFile& b) {
    return a.rel_path < b.rel_path;
  });
  return out;
}

void sort_violations(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
}

std::string format_violation(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " + v.detail;
}

}  // namespace dosm::scan
