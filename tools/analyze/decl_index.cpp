#include "analyze/decl_index.h"

#include <algorithm>
#include <array>

namespace dosm::analyze {
namespace {

bool is_qualifier(std::string_view s) {
  static constexpr std::string_view kQuals[] = {
      "static",   "const",    "constexpr", "consteval", "constinit",
      "inline",   "mutable",  "volatile",  "thread_local", "extern",
      "typename", "virtual",  "explicit",  "friend",    "register"};
  return std::find(std::begin(kQuals), std::end(kQuals), s) != std::end(kQuals);
}

bool is_builtin_piece(std::string_view s) {
  static constexpr std::string_view kPieces[] = {
      "unsigned", "signed", "long", "short", "int",    "char",
      "bool",     "float",  "double", "wchar_t", "char8_t", "char16_t",
      "char32_t", "void",   "auto", "size_t", "ssize_t", "ptrdiff_t"};
  return std::find(std::begin(kPieces), std::end(kPieces), s) != std::end(kPieces);
}

// Statement keywords that can never begin a declaration we care about.
bool is_stmt_keyword(std::string_view s) {
  static constexpr std::string_view kKw[] = {
      "if",     "for",      "while",  "do",     "switch",  "case",
      "default", "return",  "throw",  "else",   "break",   "continue",
      "goto",   "new",      "delete", "using",  "namespace", "class",
      "struct", "enum",     "union",  "template", "public", "private",
      "protected", "operator", "sizeof", "co_return", "co_await",
      "co_yield", "try",    "catch",  "this", "static_assert", "asm"};
  return std::find(std::begin(kKw), std::end(kKw), s) != std::end(kKw);
}

VarClass classify_base(std::string_view base) {
  static const std::array<std::pair<std::string_view, VarClass>, 27> kMap = {{
      {"unordered_map", VarClass::kUnordered},
      {"unordered_set", VarClass::kUnordered},
      {"unordered_multimap", VarClass::kUnordered},
      {"unordered_multiset", VarClass::kUnordered},
      {"vector", VarClass::kOrderedContainer},
      {"deque", VarClass::kOrderedContainer},
      {"string", VarClass::kOrderedContainer},
      {"basic_string", VarClass::kOrderedContainer},
      {"mutex", VarClass::kMutex},
      {"shared_mutex", VarClass::kMutex},
      {"recursive_mutex", VarClass::kMutex},
      {"timed_mutex", VarClass::kMutex},
      {"recursive_timed_mutex", VarClass::kMutex},
      {"shared_timed_mutex", VarClass::kMutex},
      {"lock_guard", VarClass::kGuard},
      {"unique_lock", VarClass::kGuard},
      {"scoped_lock", VarClass::kGuard},
      {"shared_lock", VarClass::kGuard},
      {"atomic", VarClass::kAtomic},
      {"function", VarClass::kStdFunction},
      {"move_only_function", VarClass::kStdFunction},
      {"ostream", VarClass::kOStream},
      {"ofstream", VarClass::kOStream},
      {"ostringstream", VarClass::kOStream},
      {"stringstream", VarClass::kOStream},
      {"fstream", VarClass::kOStream},
      {"osyncstream", VarClass::kOStream},
  }};
  for (const auto& [name, cls] : kMap)
    if (base == name) return cls;
  if (base.substr(0, 7) == "atomic_") return VarClass::kAtomic;
  static constexpr std::string_view kInts[] = {
      "int8_t",  "int16_t",  "int32_t",  "int64_t",  "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "intptr_t", "uintptr_t", "intmax_t",
      "uintmax_t", "streamsize", "streamoff"};
  if (std::find(std::begin(kInts), std::end(kInts), base) != std::end(kInts) ||
      base.substr(0, 9) == "int_fast" || base.substr(0, 10) == "uint_fast" ||
      base.substr(0, 10) == "int_least" || base.substr(0, 11) == "uint_least")
    return VarClass::kIntegral;
  return VarClass::kOther;
}

}  // namespace

std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t i) {
  if (i >= toks.size()) return i;
  const std::string& open = toks[i].text;
  std::string close;
  if (open == "(") close = ")";
  else if (open == "{") close = "}";
  else if (open == "[") close = "]";
  else if (open == "<") close = ">";
  else return i;
  const bool angle = open == "<";
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == open) ++depth;
    else if (t == close) --depth;
    else if (angle && t == ">>") depth -= 2;
    else if (angle && (t == ";" || t == "{" || t == "}")) return i;  // not template args
    if (depth <= 0) return j + 1;
    if (angle && j - i > 300) return i;  // give up: a stray comparison
  }
  return i;  // unbalanced: give up
}

std::optional<VarInfo> parse_type(const std::vector<Tok>& toks, std::size_t i,
                                  std::size_t& end) {
  VarInfo info;
  bool saw_type = false;
  std::string base;
  while (i < toks.size()) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kIdent && (t.text == "const" || t.text == "volatile")) {
      info.is_const = info.is_const || t.text == "const";
      ++i;
      continue;
    }
    if (t.kind == TokKind::kIdent && is_builtin_piece(t.text)) {
      // Builtin combos: consume the whole run (e.g. "unsigned long long").
      if (t.text == "float" || t.text == "double") info.cls = VarClass::kFloat;
      else if (info.cls == VarClass::kOther && t.text != "auto" && t.text != "void")
        info.cls = VarClass::kIntegral;
      saw_type = true;
      ++i;
      continue;
    }
    if (!saw_type && t.kind == TokKind::kIdent && !is_stmt_keyword(t.text) &&
        !is_qualifier(t.text)) {
      // Qualified name: ident (:: ident)*, then optional template args.
      base = t.text;
      ++i;
      while (i + 1 < toks.size() && toks[i].is("::") &&
             toks[i + 1].kind == TokKind::kIdent) {
        base = toks[i + 1].text;
        i += 2;
      }
      if (i < toks.size() && toks[i].is("<")) {
        const std::size_t past = skip_balanced(toks, i);
        if (past == i) return std::nullopt;  // '<' was a comparison
        i = past;
      }
      info.cls = classify_base(base);
      saw_type = true;
      continue;
    }
    break;
  }
  if (!saw_type) return std::nullopt;
  // Pointers/references (a pointer to T is not a T for our purposes, except
  // that a reference keeps the pointee's class — range-for bindings and
  // guard/mutex references behave like the referent).
  while (i < toks.size() &&
         (toks[i].is("&") || toks[i].is("&&") || toks[i].is("const"))) {
    ++i;
  }
  if (i < toks.size() && toks[i].is("*")) {
    info.cls = VarClass::kOther;
    while (i < toks.size() && (toks[i].is("*") || toks[i].is("const"))) ++i;
  }
  end = i;
  return info;
}

std::optional<ParsedDecl> parse_decl(const std::vector<Tok>& toks, std::size_t i) {
  ParsedDecl decl;
  // Qualifier prefix.
  while (i < toks.size() && toks[i].kind == TokKind::kIdent &&
         is_qualifier(toks[i].text)) {
    if (toks[i].is("static")) decl.info.is_static = true;
    if (toks[i].is("thread_local")) decl.info.is_thread_local = true;
    if (toks[i].is("const") || toks[i].is("constexpr") || toks[i].is("constinit"))
      decl.info.is_const = true;
    ++i;
  }
  if (i >= toks.size() || toks[i].kind != TokKind::kIdent ||
      is_stmt_keyword(toks[i].text))
    return std::nullopt;
  std::size_t after_type = i;
  const auto type = parse_type(toks, i, after_type);
  if (!type) return std::nullopt;
  decl.info.cls = type->cls;
  decl.info.is_const = decl.info.is_const || type->is_const;
  i = after_type;
  if (i >= toks.size()) return std::nullopt;

  if (toks[i].is("[")) {
    // Structured binding: [a, b, c]
    ++i;
    while (i < toks.size() && !toks[i].is("]")) {
      if (toks[i].kind == TokKind::kIdent) decl.names.push_back(toks[i].text);
      ++i;
    }
    if (i >= toks.size()) return std::nullopt;
    ++i;  // ']'
  } else {
    if (toks[i].kind != TokKind::kIdent || is_stmt_keyword(toks[i].text) ||
        is_qualifier(toks[i].text))
      return std::nullopt;
    if (i + 1 < toks.size() && toks[i + 1].is("::"))
      return std::nullopt;  // qualified name: a function definition
    decl.names.push_back(toks[i].text);
    decl.info.line = toks[i].line;
    ++i;
  }

  // Initializer / terminator.
  if (i < toks.size() && (toks[i].is("(") || toks[i].is("{"))) {
    const std::size_t past = skip_balanced(toks, i);
    if (past == i) return std::nullopt;
    const bool paren = toks[i].is("(");
    for (std::size_t j = i + 1; j + 1 < past; ++j)
      if (toks[j].kind == TokKind::kIdent) decl.init_idents.push_back(toks[j].text);
    // Function declaration/definition, not a parenthesized initializer:
    // '(' ... ')' followed by a body, ctor-initializer, or trailing
    // qualifiers instead of ';' or ','.
    if (paren && past < toks.size() && !toks[past].is(";") && !toks[past].is(","))
      return std::nullopt;
    i = past;
  } else if (i < toks.size() && toks[i].is("=")) {
    ++i;
    int depth = 0;
    while (i < toks.size()) {
      const std::string& t = toks[i].text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      else if (t == ")" || t == "}" || t == "]") --depth;
      else if (depth == 0 && (t == ";" || t == ",")) break;
      if (toks[i].kind == TokKind::kIdent) decl.init_idents.push_back(toks[i].text);
      ++i;
    }
  } else if (i < toks.size() &&
             (toks[i].is(";") || toks[i].is(",") || toks[i].is(":"))) {
    // Plain declaration, or the left side of a range-for header.
  } else {
    return std::nullopt;
  }

  // Extra declarators: "int a, b;" — same class for every name.
  while (i < toks.size() && toks[i].is(",")) {
    ++i;
    while (i < toks.size() && (toks[i].is("*") || toks[i].is("&"))) ++i;
    if (i < toks.size() && toks[i].kind == TokKind::kIdent) {
      decl.names.push_back(toks[i].text);
      ++i;
    }
    while (i < toks.size() && !toks[i].is(",") && !toks[i].is(";")) {
      if (toks[i].is("(") || toks[i].is("{") || toks[i].is("[")) {
        const std::size_t past = skip_balanced(toks, i);
        if (past == i) break;
        i = past;
      } else {
        ++i;
      }
    }
  }

  if (decl.names.empty()) return std::nullopt;
  decl.next = i;
  return decl;
}

FileIndex build_index(const std::vector<Tok>& toks, std::string_view raw) {
  FileIndex out;
  out.includes = quoted_includes(raw);

  enum class FrameKind { kNamespace, kClass, kOther };
  struct Frame {
    FrameKind kind;
    std::string cls;
  };
  std::vector<Frame> stack = {{FrameKind::kNamespace, ""}};

  std::string pending_class;   // "class X" seen, waiting for '{'
  bool pending_namespace = false;
  bool at_stmt_start = true;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    const FrameKind scope = stack.back().kind;

    if (t.is("{")) {
      if (!pending_class.empty()) {
        stack.push_back({FrameKind::kClass, pending_class});
        pending_class.clear();
      } else if (pending_namespace) {
        stack.push_back({FrameKind::kNamespace, ""});
        pending_namespace = false;
      } else {
        stack.push_back({FrameKind::kOther, ""});
      }
      at_stmt_start = true;
      continue;
    }
    if (t.is("}")) {
      if (stack.size() > 1) stack.pop_back();
      at_stmt_start = true;
      continue;
    }
    if (t.is(";")) {
      pending_class.clear();  // was a forward declaration
      pending_namespace = false;
      at_stmt_start = true;
      continue;
    }

    if (t.ident("namespace")) {
      pending_namespace = true;
      at_stmt_start = false;
      continue;
    }
    if (t.ident("template") && i + 1 < toks.size() && toks[i + 1].is("<")) {
      const std::size_t past = skip_balanced(toks, i + 1);
      if (past != i + 1) i = past - 1;
      continue;
    }
    if ((t.ident("class") || t.ident("struct")) &&
        (scope == FrameKind::kNamespace || scope == FrameKind::kClass ||
         scope == FrameKind::kOther)) {
      // "class X ... {" opens a class scope; "class X;" is cancelled at ';'.
      // "enum class" is handled under "enum" below (never reaches here).
      if (i + 1 < toks.size() && toks[i + 1].kind == TokKind::kIdent)
        pending_class = toks[i + 1].text;
      at_stmt_start = false;
      continue;
    }
    if (t.ident("enum") || t.ident("union")) {
      // Skip the whole body; enumerators are not variables.
      std::size_t j = i + 1;
      while (j < toks.size() && !toks[j].is("{") && !toks[j].is(";")) ++j;
      if (j < toks.size() && toks[j].is("{")) j = skip_balanced(toks, j) - 1;
      i = j;
      at_stmt_start = true;
      continue;
    }
    if (t.is(":") && i > 0 &&
        (toks[i - 1].ident("public") || toks[i - 1].ident("private") ||
         toks[i - 1].ident("protected"))) {
      at_stmt_start = true;
      continue;
    }
    if (t.ident("public") || t.ident("private") || t.ident("protected")) {
      continue;
    }

    if (at_stmt_start && t.kind == TokKind::kIdent &&
        (scope == FrameKind::kNamespace || scope == FrameKind::kClass)) {
      if (auto decl = parse_decl(toks, i)) {
        if (decl->info.line == 0) decl->info.line = t.line;
        for (const std::string& name : decl->names) {
          if (scope == FrameKind::kClass) {
            auto& cls = out.classes[stack.back().cls];
            cls.members[name] = decl->info;
            if (decl->info.cls == VarClass::kMutex) cls.has_mutex = true;
          } else {
            out.globals[name] = decl->info;
          }
        }
        i = decl->next > i ? decl->next - 1 : i;
        at_stmt_start = false;
        continue;
      }
    }
    at_stmt_start = false;
  }
  return out;
}

}  // namespace dosm::analyze
