#pragma once
// Declaration indexing for dosmeter_analyze.
//
// A lightweight, pragmatic model of the declarations the checks need:
// which identifiers name unordered containers, mutexes, RAII lock guards,
// atomics, floating-point accumulators, callbacks, and output streams —
// at namespace scope, as class members, and (via parse_decl, used by the
// check walker) as function locals. It is not a C++ parser: ambiguity is
// resolved toward whatever keeps the checks' false-positive rate low, and
// genuine exceptions go through the allowlist.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analyze/token.h"

namespace dosm::analyze {

enum class VarClass {
  kOther,
  kUnordered,          // std::unordered_{map,set,multimap,multiset}
  kOrderedContainer,   // vector / deque / string: order-bearing output state
  kMutex,              // std::mutex and friends
  kGuard,              // lock_guard / unique_lock / scoped_lock / shared_lock
  kAtomic,             // std::atomic<...> / std::atomic_*
  kFloat,              // float / double / long double
  kIntegral,           // integer types: commutative accumulation is safe
  kStdFunction,        // std::function: invoking one is an emission
  kOStream,            // ostream / ofstream / ostringstream / stringstream
};

struct VarInfo {
  VarClass cls = VarClass::kOther;
  bool is_const = false;
  bool is_static = false;
  bool is_thread_local = false;
  int line = 0;
};

/// One parsed declaration statement (possibly a structured binding with
/// several names).
struct ParsedDecl {
  std::vector<std::string> names;
  VarInfo info;
  // Identifiers appearing in a parenthesized/braced initializer — for lock
  // guards these name the mutexes being acquired.
  std::vector<std::string> init_idents;
  std::size_t next = 0;  // token index just past the declarator (at init/;)
};

struct ClassInfo {
  std::unordered_map<std::string, VarInfo> members;
  bool has_mutex = false;
};

struct FileIndex {
  std::unordered_map<std::string, ClassInfo> classes;
  std::unordered_map<std::string, VarInfo> globals;  // namespace-scope vars
  std::vector<std::string> includes;  // quoted include targets, as written
};

/// Classifies a type token sequence starting at `i`; advances past the type
/// (qualified name, builtin combos, template arguments, *, &). Returns
/// nullopt if tokens at `i` do not look like a type.
std::optional<VarInfo> parse_type(const std::vector<Tok>& toks, std::size_t i,
                                  std::size_t& end);

/// Attempts to parse a declaration statement at token `i` (qualifiers, type,
/// declarator name(s)). Returns nullopt if this is not a declaration.
std::optional<ParsedDecl> parse_decl(const std::vector<Tok>& toks, std::size_t i);

/// Skips a balanced token run starting at an opener ('(', '{', '[', '<');
/// returns the index just past the matching closer. For '<' the scan bails
/// (returns `i`) if the tokens cannot be template arguments.
std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t i);

/// Pass 1: namespace-scope and class-member declarations plus includes.
FileIndex build_index(const std::vector<Tok>& toks, std::string_view raw);

}  // namespace dosm::analyze
