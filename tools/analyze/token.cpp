#include "analyze/token.h"

#include <cctype>

namespace dosm::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-char punctuators the checks care about, longest first so maximal
// munch holds. Anything unlisted lexes as single characters, which is fine:
// no check distinguishes e.g. <<= from << plus =.
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPuncts2[] = {"::", "->", "++", "--", "+=", "-=",
                                         "*=", "/=", "%=", "|=", "&=", "^=",
                                         "==", "!=", "<=", ">=", "&&", "||",
                                         "<<", ">>"};

}  // namespace

std::vector<Tok> lex(std::string_view blanked) {
  std::vector<Tok> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = blanked.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = blanked[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip to end of line, honoring continuations.
      while (i < n) {
        if (blanked[i] == '\n') {
          if (i > 0 && blanked[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(blanked[j])) ++j;
      out.push_back({TokKind::kIdent, std::string(blanked.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(blanked[j]) || blanked[j] == '.' ||
                       blanked[j] == '\'' ||
                       ((blanked[j] == '+' || blanked[j] == '-') &&
                        (blanked[j - 1] == 'e' || blanked[j - 1] == 'E' ||
                         blanked[j - 1] == 'p' || blanked[j - 1] == 'P')))) {
        ++j;
      }
      out.push_back({TokKind::kNumber, std::string(blanked.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && blanked[j] != '"' && blanked[j] != '\n') ++j;
      if (j < n && blanked[j] == '"') ++j;
      out.push_back({TokKind::kString, "\"\"", line});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && blanked[j] != '\'' && blanked[j] != '\n') ++j;
      if (j < n && blanked[j] == '\'') ++j;
      out.push_back({TokKind::kChar, "''", line});
      i = j;
      continue;
    }
    bool matched = false;
    for (std::string_view p : kPuncts3) {
      if (blanked.compare(i, p.size(), p) == 0) {
        out.push_back({TokKind::kPunct, std::string(p), line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (std::string_view p : kPuncts2) {
      if (blanked.compare(i, p.size(), p) == 0) {
        out.push_back({TokKind::kPunct, std::string(p), line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

std::vector<std::string> quoted_includes(std::string_view raw) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t eol = raw.find('\n', pos);
    if (eol == std::string_view::npos) eol = raw.size();
    std::string_view rl = raw.substr(pos, eol - pos);
    // Cheap directive match; commented-out includes are rare enough that a
    // spurious include edge only widens the (conservative) reachable set.
    std::size_t k = rl.find_first_not_of(" \t");
    if (k != std::string_view::npos && rl[k] == '#') {
      std::size_t inc = rl.find("include", k);
      if (inc != std::string_view::npos) {
        std::size_t q0 = rl.find('"', inc);
        if (q0 != std::string_view::npos) {
          std::size_t q1 = rl.find('"', q0 + 1);
          if (q1 != std::string_view::npos && q1 > q0 + 1)
            out.emplace_back(rl.substr(q0 + 1, q1 - q0 - 1));
        }
      }
    }
    pos = eol + 1;
  }
  return out;
}

}  // namespace dosm::analyze
