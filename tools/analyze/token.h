#pragma once
// Lexer for dosmeter_analyze: turns comment/string-blanked C++ into a flat
// token stream with line numbers. This is deliberately not a C++ parser —
// the analyzer's checks work on tokens plus a scope stack, which is enough
// to track declarations, loops, guards, and throw sites without dragging in
// a compiler frontend.

#include <string>
#include <string_view>
#include <vector>

namespace dosm::analyze {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. 0x..., digit separators)
  kString,  // "..." (contents already blanked by the scanner)
  kChar,    // '...'
  kPunct,   // operators and punctuation, multi-char ops fused (::, <<, +=, ...)
};

struct Tok {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;  // 1-based

  bool is(std::string_view s) const { return text == s; }
  bool ident(std::string_view s) const { return kind == TokKind::kIdent && text == s; }
};

/// Lexes blanked source (see scan::blank_comments_and_literals).
/// Preprocessor directives are skipped line-wise (the include graph is read
/// from the raw text instead, since blanking erases quoted include paths).
std::vector<Tok> lex(std::string_view blanked);

/// Repo-relative include targets of `raw` source: the X in #include "X".
/// Angle-bracket (system) includes are ignored.
std::vector<std::string> quoted_includes(std::string_view raw);

}  // namespace dosm::analyze
