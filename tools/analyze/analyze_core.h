#pragma once
// dosmeter_analyze — semantic static analyzer for the repo's determinism and
// concurrency contracts. Where dosmeter_lint pattern-matches single lines,
// this tool lexes each file into a token stream, tracks scopes and a
// lightweight declaration index (tools/analyze/decl_index.h), and runs five
// checks that need that context:
//
//   ordered-emission    unordered_{map,set} iteration whose body emits,
//                       serializes, or accumulates order-sensitively must be
//                       proven order-safe (sorted afterwards, commutative
//                       integral accumulation, keyed stores, tie-broken
//                       selection) or explicitly allowed.
//   shared-state-race   mutable namespace-scope / static-local state and
//                       non-atomic members of mutex-owning classes written
//                       outside any lock-guard scope, in files reachable from
//                       the concurrent subsystems (src/parallel, src/query,
//                       src/obs, src/serve, src/storage).
//   bare-lock           .lock()/.unlock()/.try_lock() called directly on a
//                       mutex instead of going through an RAII guard.
//   lock-order          inconsistent mutex acquisition order across the
//                       observed guard nestings (a cycle in the global
//                       acquired-before graph).
//   throw-contract      throw sites that violate the repo's exception typing:
//                       src/core/serialize.cpp throws SerializeError only;
//                       config-validation code throws std::invalid_argument.
//   float-accumulation  floating-point accumulation in unordered iteration
//                       or merge/combine boundaries, where evaluation order
//                       changes the result bits.
//
// Suppression mirrors dosmeter_lint: `rule path-suffix` entries in
// tools/analyze_allowlist.txt, or an inline `analyze:allow(<rule>)` comment
// on the flagged line. Stale allowlist entries are themselves violations.

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyze/decl_index.h"
#include "scan/scan_util.h"

namespace dosm::analyze {

using scan::AllowEntry;
using scan::Violation;

struct AnalyzeOptions {
  // Files whose rel_path starts with one of these prefixes — plus everything
  // in their quoted-include closure — are in scope for shared-state-race.
  std::vector<std::string> race_roots = {"src/parallel/", "src/query/",
                                         "src/obs/", "src/serve/",
                                         "src/storage/", "src/ingest/",
                                         "src/subscribe/"};
  // rel-path suffix -> sole exception type that file may throw.
  std::vector<std::pair<std::string, std::string>> throw_contracts = {
      {"src/core/serialize.cpp", "SerializeError"},
      {"src/storage/codec.cpp", "SerializeError"}};
};

/// One observed "held `before` while acquiring `after`" guard nesting.
struct LockEdge {
  std::string before;
  std::string after;
  std::string file;
  int line = 0;
};

/// Cross-file declaration context: per-file indexes plus deterministic
/// unions used to resolve members/globals declared in headers from the
/// .cpp files that use them.
struct TreeIndex {
  std::unordered_map<std::string, FileIndex> files;  // rel_path -> index
  std::unordered_map<std::string, ClassInfo> classes;
  std::unordered_map<std::string, VarInfo> members;  // union over all classes
  std::unordered_map<std::string, VarInfo> globals;
};

/// Builds the cross-file index. Files are processed in rel_path order and
/// names merged in sorted order so the result is reproducible.
TreeIndex index_tree(const std::vector<scan::SourceFile>& files);

/// Analyzes one file. `race_scope` gates shared-state-race; `lock_edges`
/// (optional) receives guard-nesting edges for the global lock-order pass.
std::vector<Violation> analyze_source(std::string_view rel_path,
                                      std::string_view contents,
                                      const std::vector<AllowEntry>& allow,
                                      const AnalyzeOptions& opts,
                                      bool race_scope, const TreeIndex& tree,
                                      std::vector<LockEdge>* lock_edges);

/// Analyzes every source file under root/subdirs: per-file checks, the
/// global lock-order cycle pass, and stale-allowlist reporting.
std::vector<Violation> analyze_tree(const std::string& root,
                                    const std::vector<std::string>& subdirs,
                                    const std::vector<AllowEntry>& allow,
                                    const AnalyzeOptions& opts = {});

/// Exposed for tests: finds a deterministic lock-order cycle, or empty.
std::vector<Violation> lock_order_violations(
    const std::vector<LockEdge>& edges);

}  // namespace dosm::analyze
