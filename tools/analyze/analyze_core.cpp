#include "analyze/analyze_core.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

namespace dosm::analyze {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_sort_name(std::string_view s) {
  return s == "sort" || s == "stable_sort" || s == "partial_sort" ||
         s == "nth_element" || s == "canonical_sort";
}

bool is_emit_method(std::string_view s) {
  return s == "push_back" || s == "emplace_back" || s == "push_front" ||
         s == "append" || s == "write";
}

struct Resolved {
  VarInfo info;
  // Index of the local scope the name was found in, or -1 for class members /
  // globals ("outside any function scope").
  int scope_idx = -1;
  bool found = false;
  bool is_member = false;
  bool is_global = false;
};

// Innermost-loop bookkeeping.
struct LoopInfo {
  bool unordered = false;
  std::string range_desc;
  int line = 0;
  std::size_t body_end = 0;     // token index just past the loop body
  std::size_t locals_depth = 0; // locals_.size() at loop entry
};

// Selection-statement context for the argmax heuristic.
enum class SelCtx { kNone, kArgmax, kTiebroken };

class Walker {
 public:
  Walker(std::string_view rel_path, const std::vector<Tok>& toks,
         const std::vector<std::string>& raw_lines,
         const std::vector<AllowEntry>& allow, const AnalyzeOptions& opts,
         bool race_scope, const FileIndex& file_idx, const TreeIndex& tree,
         std::vector<Violation>* out, std::vector<LockEdge>* edges)
      : rel_(rel_path),
        toks_(toks),
        raw_lines_(raw_lines),
        allow_(allow),
        opts_(opts),
        race_scope_(race_scope),
        file_idx_(file_idx),
        tree_(tree),
        out_(out),
        edges_(edges) {
    for (const auto& [suffix, type] : opts_.throw_contracts)
      if (scan::ends_with(rel_, suffix)) file_throw_type_ = type;
    compute_matches();
  }

  void run() { walk_outer(0, toks_.size(), ""); }

 private:
  // -- infrastructure -------------------------------------------------------

  void compute_matches() {
    match_.assign(toks_.size(), kNpos);
    std::vector<std::size_t> paren, brace, bracket;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(") paren.push_back(i);
      else if (t == "[") bracket.push_back(i);
      else if (t == "{") brace.push_back(i);
      else if (t == ")" && !paren.empty()) {
        match_[paren.back()] = i;
        paren.pop_back();
      } else if (t == "]" && !bracket.empty()) {
        match_[bracket.back()] = i;
        bracket.pop_back();
      } else if (t == "}" && !brace.empty()) {
        match_[brace.back()] = i;
        brace.pop_back();
      }
    }
  }

  void add(const char* rule, int line, std::string detail) {
    if (scan::allowed(allow_, rule, rel_)) return;
    if (line >= 1 && static_cast<std::size_t>(line) <= raw_lines_.size() &&
        scan::has_inline_allow(raw_lines_[line - 1], "analyze", rule))
      return;
    out_->push_back(Violation{std::string(rel_), line, rule, std::move(detail)});
  }

  Resolved resolve(const std::string& name) const {
    Resolved r;
    for (std::size_t s = locals_.size(); s-- > 0;) {
      auto it = locals_[s].find(name);
      if (it != locals_[s].end()) {
        r.info = it->second;
        r.scope_idx = static_cast<int>(s);
        r.found = true;
        return r;
      }
    }
    if (!cur_cls_.empty()) {
      auto cit = tree_.classes.find(cur_cls_);
      if (cit != tree_.classes.end()) {
        auto mit = cit->second.members.find(name);
        if (mit != cit->second.members.end()) {
          r.info = mit->second;
          r.found = r.is_member = true;
          return r;
        }
      }
    }
    auto git = file_idx_.globals.find(name);
    if (git == file_idx_.globals.end()) git = tree_.globals.find(name);
    else {
      r.info = git->second;
      r.found = r.is_global = true;
      return r;
    }
    if (git != tree_.globals.end()) {
      r.info = git->second;
      r.found = r.is_global = true;
      return r;
    }
    return r;
  }

  // Resolves a member name through the whole-tree union (for `obj.member`
  // chains where obj's type is not tracked).
  Resolved resolve_member(const std::string& name) const {
    Resolved r;
    auto it = tree_.members.find(name);
    if (it != tree_.members.end()) {
      r.info = it->second;
      r.found = r.is_member = true;
    }
    return r;
  }

  // Class of an expression like `m`, `flow.ports`, `this->flows_`.
  VarClass expr_class(std::size_t b, std::size_t e) const {
    std::vector<std::string> chain;
    bool call = false;
    for (std::size_t i = b; i < e; ++i) {
      const Tok& t = toks_[i];
      if (t.kind == TokKind::kIdent && !t.ident("this") && !t.ident("std") &&
          !t.ident("const") && !t.ident("auto"))
        chain.push_back(t.text);
      if (t.is("(")) call = true;
    }
    if (chain.empty()) return VarClass::kOther;
    if (call) return VarClass::kOther;  // function result: unknown
    if (chain.size() == 1) {
      const Resolved r = resolve(chain[0]);
      return r.found ? r.info.cls : VarClass::kOther;
    }
    const Resolved r = resolve_member(chain.back());
    return r.found ? r.info.cls : VarClass::kOther;
  }

  const LoopInfo* innermost_unordered() const {
    for (std::size_t i = loops_.size(); i-- > 0;)
      if (loops_[i].unordered) return &loops_[i];
    return nullptr;
  }

  // True when a post-loop sort over `name` exists before the function ends.
  bool sorted_after(const LoopInfo& loop, const std::string& name) const {
    for (std::size_t i = loop.body_end; i + 1 < fn_end_; ++i) {
      if (toks_[i].kind != TokKind::kIdent || !is_sort_name(toks_[i].text))
        continue;
      if (!toks_[i + 1].is("(")) continue;
      const std::size_t close = match_[i + 1];
      if (close == kNpos || close > fn_end_) continue;
      for (std::size_t j = i + 2; j < close; ++j)
        if (toks_[j].ident(name)) return true;
    }
    return false;
  }

  bool is_loop_local(const std::string& name, const LoopInfo& loop) const {
    for (std::size_t s = loop.locals_depth; s < locals_.size(); ++s)
      if (locals_[s].count(name) != 0) return true;
    return false;
  }

  std::string span_text(std::size_t b, std::size_t e) const {
    std::string out;
    for (std::size_t i = b; i < e && i < b + 12; ++i) {
      if (!out.empty() && toks_[i].kind == TokKind::kIdent &&
          toks_[i - 1].kind == TokKind::kIdent)
        out += ' ';
      out += toks_[i].text;
    }
    return out;
  }

  std::string qualify(const std::string& name, const Resolved& r) const {
    if (r.is_member && !cur_cls_.empty()) return cur_cls_ + "::" + name;
    if (r.is_global) return "::" + name;
    return name;
  }

  // -- outer scopes ---------------------------------------------------------

  void walk_outer(std::size_t b, std::size_t e, const std::string& cls) {
    std::size_t i = b;
    while (i < e) {
      const Tok& t = toks_[i];
      if (t.is(";") || t.is(":") || t.is("}")) {
        ++i;
        continue;
      }
      if (t.ident("public") || t.ident("private") || t.ident("protected")) {
        ++i;
        continue;
      }
      if (t.ident("template") && i + 1 < e && toks_[i + 1].is("<")) {
        const std::size_t p = skip_balanced(toks_, i + 1);
        i = p == i + 1 ? i + 2 : p;
        continue;
      }
      if (t.ident("namespace")) {
        std::size_t j = i + 1;
        while (j < e && !toks_[j].is("{") && !toks_[j].is(";")) ++j;
        if (j < e && toks_[j].is("{") && match_[j] != kNpos) {
          walk_outer(j + 1, match_[j], cls);
          i = match_[j] + 1;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (t.ident("class") || t.ident("struct")) {
        std::string name = cls;
        if (i + 1 < e && toks_[i + 1].kind == TokKind::kIdent)
          name = toks_[i + 1].text;
        std::size_t j = i + 1;
        while (j < e && !toks_[j].is("{") && !toks_[j].is(";")) {
          if (toks_[j].is("<")) {
            const std::size_t p = skip_balanced(toks_, j);
            if (p != j) {
              j = p;
              continue;
            }
          }
          ++j;
        }
        if (j < e && toks_[j].is("{") && match_[j] != kNpos) {
          walk_outer(j + 1, match_[j], name);
          i = match_[j] + 1;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (t.ident("enum") || t.ident("union")) {
        std::size_t j = i + 1;
        while (j < e && !toks_[j].is("{") && !toks_[j].is(";")) ++j;
        i = (j < e && toks_[j].is("{") && match_[j] != kNpos) ? match_[j] + 1
                                                             : j + 1;
        continue;
      }
      if (t.ident("using") || t.ident("typedef") || t.ident("friend") ||
          t.ident("static_assert") || t.ident("extern")) {
        while (i < e && !toks_[i].is(";")) {
          if (toks_[i].is("{") && match_[i] != kNpos) i = match_[i];
          ++i;
        }
        continue;
      }

      // Generic outer statement: declaration (ends at ';') or a definition
      // with a body (ends at '{'). Find whichever comes first, skipping
      // template argument lists and balanced (), [].
      std::size_t j = i;
      std::size_t eq = kNpos, paren = kNpos, body = kNpos;
      while (j < e) {
        const std::string& s = toks_[j].text;
        if (s == ";") break;
        if (s == "(" || s == "[") {
          if (paren == kNpos && s == "(") paren = j;
          if (match_[j] == kNpos) {
            ++j;
            continue;
          }
          j = match_[j] + 1;
          continue;
        }
        if (s == "<") {
          const std::size_t p = skip_balanced(toks_, j);
          if (p != j) {
            j = p;
            continue;
          }
        }
        if (s == "=" && eq == kNpos) eq = j;
        if (s == "{") {
          body = j;
          break;
        }
        ++j;
      }
      if (body == kNpos || match_[body] == kNpos) {
        i = j + 1;  // plain declaration; already indexed in pass 1
        continue;
      }
      // Body found. An '=' before the body means this is an initializer
      // (possibly holding a lambda): walk it as a plain function body with
      // no name. Otherwise it is a function definition.
      std::string fn_name, fn_cls = cls;
      std::size_t pb = kNpos, pe = kNpos;
      if (eq == kNpos && paren != kNpos && paren > i &&
          toks_[paren - 1].kind == TokKind::kIdent) {
        fn_name = toks_[paren - 1].text;
        pb = paren + 1;
        pe = match_[paren];
        if (paren >= i + 3 && toks_[paren - 2].is("::") &&
            toks_[paren - 3].kind == TokKind::kIdent)
          fn_cls = toks_[paren - 3].text;
      }
      walk_function(body + 1, match_[body], fn_cls, fn_name, pb, pe);
      i = match_[body] + 1;
    }
  }

  // -- function bodies ------------------------------------------------------

  void register_params(std::size_t pb, std::size_t pe) {
    std::size_t i = pb;
    while (i < pe) {
      std::size_t after = i;
      const auto type = parse_type(toks_, i, after);
      if (type && after < pe && toks_[after].kind == TokKind::kIdent) {
        VarInfo v = *type;
        v.line = toks_[after].line;
        locals_.back()[toks_[after].text] = v;
      }
      // Next parameter: skip to ',' at this level.
      while (i < pe && !toks_[i].is(",")) {
        if ((toks_[i].is("(") || toks_[i].is("[") || toks_[i].is("{")) &&
            match_[i] != kNpos && match_[i] < pe) {
          i = match_[i];
        } else if (toks_[i].is("<")) {
          const std::size_t p = skip_balanced(toks_, i);
          if (p != i && p <= pe) {
            i = p;
            continue;
          }
        }
        ++i;
      }
      if (i < pe) ++i;  // ','
    }
  }

  void walk_function(std::size_t b, std::size_t e, const std::string& cls,
                     const std::string& fn, std::size_t pb, std::size_t pe) {
    const std::string saved_cls = cur_cls_;
    const std::string saved_fn = cur_fn_;
    const std::size_t saved_end = fn_end_;
    const bool saved_validate = validate_ctx_;
    const bool saved_merge = merge_ctx_;

    cur_cls_ = cls;
    cur_fn_ = fn;
    fn_end_ = e;
    merge_ctx_ = fn.find("merge") != std::string::npos ||
                 fn.find("combine") != std::string::npos;
    validate_ctx_ = starts_with(fn, "validate") || starts_with(fn, "Validate");

    locals_.emplace_back();
    if (pb != kNpos && pe != kNpos && pe <= toks_.size()) {
      register_params(pb, pe);
      if (!validate_ctx_) {
        for (std::size_t i = pb; i < pe; ++i) {
          if (toks_[i].kind != TokKind::kIdent) continue;
          const std::string& s = toks_[i].text;
          if (scan::ends_with(s, "Config") || scan::ends_with(s, "Thresholds") ||
              scan::ends_with(s, "Options"))
            validate_ctx_ = true;
        }
      }
    }
    walk_stmts(b, e);
    locals_.pop_back();

    cur_cls_ = saved_cls;
    cur_fn_ = saved_fn;
    fn_end_ = saved_end;
    validate_ctx_ = saved_validate;
    merge_ctx_ = saved_merge;
  }

  void walk_stmts(std::size_t b, std::size_t e) {
    locals_.emplace_back();
    const std::size_t guards_on_entry = held_.size();
    std::size_t i = b;
    while (i < e) {
      const Tok& t = toks_[i];
      if (t.is(";") || t.is(":") || t.is("}")) {
        ++i;
        continue;
      }
      if (t.is("{")) {
        if (match_[i] != kNpos && match_[i] <= e) {
          walk_stmts(i + 1, match_[i]);
          i = match_[i] + 1;
        } else {
          ++i;
        }
        continue;
      }
      if (t.ident("for")) {
        i = handle_for(i, e);
        continue;
      }
      if (t.ident("if")) {
        i = handle_if(i, e);
        continue;
      }
      if (t.ident("while") || t.ident("switch")) {
        std::size_t p = i + 1;
        if (p < e && toks_[p].is("(") && match_[p] != kNpos) {
          process_stmt(p + 1, match_[p]);  // condition can contain bare locks
          i = match_[p] + 1;
        } else {
          ++i;
        }
        continue;
      }
      if (t.ident("do") || t.ident("else") || t.ident("try")) {
        ++i;
        continue;
      }
      if (t.ident("catch")) {
        std::size_t p = i + 1;
        i = (p < e && toks_[p].is("(") && match_[p] != kNpos) ? match_[p] + 1
                                                              : i + 1;
        continue;
      }
      if (t.ident("case") || t.ident("default")) {
        while (i < e && !toks_[i].is(":")) ++i;
        continue;
      }
      // Ordinary statement: scan to ';' at this level. Lambda bodies nested
      // in the statement are walked as blocks; process_stmt skips them.
      std::size_t j = i;
      while (j < e) {
        const std::string& s = toks_[j].text;
        if (s == ";") break;
        if ((s == "(" || s == "[") && match_[j] != kNpos && match_[j] < e) {
          j = match_[j] + 1;
          continue;
        }
        if (s == "{" && match_[j] != kNpos && match_[j] < e) {
          walk_stmts(j + 1, match_[j]);
          j = match_[j] + 1;
          continue;
        }
        if (s == "}") break;
        ++j;
      }
      process_stmt(i, j);
      i = j + 1;
    }
    held_.resize(guards_on_entry);
    locals_.pop_back();
  }

  std::size_t handle_for(std::size_t i, std::size_t e) {
    const std::size_t p = i + 1;
    if (p >= e || !toks_[p].is("(") || match_[p] == kNpos) return i + 1;
    const std::size_t hb = p + 1, he = match_[p];

    LoopInfo info;
    info.line = toks_[i].line;
    std::optional<ParsedDecl> range_decl;

    // Range-for: find ':' at header depth 0.
    std::size_t colon = kNpos;
    for (std::size_t k = hb; k < he; ++k) {
      const std::string& s = toks_[k].text;
      if ((s == "(" || s == "[" || s == "{") && match_[k] != kNpos &&
          match_[k] < he) {
        k = match_[k];
        continue;
      }
      if (s == "<") {
        const std::size_t past = skip_balanced(toks_, k);
        if (past != k && past <= he) {
          k = past - 1;
          continue;
        }
      }
      if (s == ":") {
        colon = k;
        break;
      }
      if (s == ";") break;  // classic for
    }
    // Everything the header declares (range bindings, classic-for iterators)
    // is loop-local: scope it under the loop so `it = c.erase(it)` and
    // friends never look like writes to outer state.
    info.locals_depth = locals_.size();
    locals_.emplace_back();
    if (colon != kNpos) {
      range_decl = parse_decl(toks_, hb);
      const VarClass rc = expr_class(colon + 1, he);
      info.unordered = rc == VarClass::kUnordered;
      info.range_desc = span_text(colon + 1, he);
    } else {
      // Iterator loop: `x.begin()` / `x->begin()` over an unordered container.
      for (std::size_t k = hb; k + 1 < he; ++k) {
        if (toks_[k].kind == TokKind::kIdent &&
            (toks_[k].text == "begin" || toks_[k].text == "cbegin") && k > hb &&
            (toks_[k - 1].is(".") || toks_[k - 1].is("->")) && k >= hb + 2 &&
            toks_[k - 2].kind == TokKind::kIdent) {
          const Resolved r = resolve(toks_[k - 2].text);
          if (r.found && r.info.cls == VarClass::kUnordered) {
            info.unordered = true;
            info.range_desc = toks_[k - 2].text;
          }
        }
      }
      // Classic header also declares/assigns; scan it for bare locks etc.
      process_stmt(hb, he);
    }

    // Body extent.
    std::size_t after = he + 1;
    std::size_t ret;
    std::size_t body_b, body_e;
    if (after < e && toks_[after].is("{") && match_[after] != kNpos) {
      body_b = after + 1;
      body_e = match_[after];
      ret = match_[after] + 1;
    } else {
      body_b = after;
      std::size_t j = after;
      while (j < e && !toks_[j].is(";")) {
        if ((toks_[j].is("(") || toks_[j].is("[")) && match_[j] != kNpos &&
            match_[j] < e) {
          j = match_[j] + 1;
          continue;
        }
        ++j;
      }
      body_e = j + 1;  // include the ';'
      ret = j + 1;
    }
    info.body_end = ret;

    if (range_decl) {
      for (const std::string& name : range_decl->names) {
        VarInfo v = range_decl->info;
        // The element type of an unordered container is itself unordered
        // only for nested cases we do not model; bindings default to kOther
        // unless the decl names a real type.
        locals_.back()[name] = v;
      }
    }
    loops_.push_back(info);
    walk_stmts(body_b, body_e);
    loops_.pop_back();
    locals_.pop_back();
    return ret;
  }

  std::size_t handle_if(std::size_t i, std::size_t e) {
    std::size_t p = i + 1;
    if (p < e && toks_[p].ident("constexpr")) ++p;
    if (p >= e || !toks_[p].is("(") || match_[p] == kNpos) return i + 1;
    const std::size_t cb = p + 1, ce = match_[p];

    bool relational = false, has_or = false;
    for (std::size_t k = cb; k < ce; ++k) {
      const std::string& s = toks_[k].text;
      if (s == "<" || s == ">" || s == "<=" || s == ">=") relational = true;
      if (s == "||") has_or = true;
    }
    process_stmt(cb, ce);  // bare locks / writes in the condition

    SelCtx ctx = SelCtx::kNone;
    if (relational && innermost_unordered() != nullptr)
      ctx = has_or ? SelCtx::kTiebroken : SelCtx::kArgmax;

    // Body extent (braced or single statement).
    std::size_t after = ce + 1;
    std::size_t body_b, body_e, ret;
    if (after < e && toks_[after].is("{") && match_[after] != kNpos) {
      body_b = after + 1;
      body_e = match_[after];
      ret = match_[after] + 1;
    } else {
      body_b = after;
      std::size_t j = after;
      while (j < e && !toks_[j].is(";")) {
        if ((toks_[j].is("(") || toks_[j].is("[") || toks_[j].is("{")) &&
            match_[j] != kNpos && match_[j] < e) {
          j = match_[j] + 1;
          continue;
        }
        ++j;
      }
      body_e = j + 1;
      ret = j + 1;
    }
    sel_.push_back(ctx);
    walk_stmts(body_b, body_e);
    sel_.pop_back();
    return ret;
  }

  // -- per-statement checks -------------------------------------------------

  void process_stmt(std::size_t b, std::size_t e) {
    if (b >= e) return;

    // Declarations: register locals; lock guards acquire mutexes.
    if (toks_[b].kind == TokKind::kIdent) {
      if (auto decl = parse_decl(toks_, b)) {
        for (const std::string& name : decl->names) {
          VarInfo v = decl->info;
          if (v.line == 0) v.line = toks_[b].line;
          locals_.back()[name] = v;
        }
        if (decl->info.cls == VarClass::kGuard) acquire_guard(*decl, b);
        return;
      }
    }

    if (toks_[b].ident("throw")) {
      check_throw(b, e);
      return;
    }

    check_bare_lock(b, e);
    check_assignment(b, e);
    check_emission(b, e);
  }

  void acquire_guard(const ParsedDecl& decl, std::size_t b) {
    std::vector<std::string> mutexes;
    for (const std::string& ident : decl.init_idents) {
      const Resolved r = resolve(ident);
      if (r.found && r.info.cls == VarClass::kMutex)
        mutexes.push_back(qualify(ident, r));
    }
    if (mutexes.empty() && !decl.init_idents.empty())
      mutexes.push_back(decl.init_idents.front());
    const int line = toks_[b].line;
    for (const std::string& m : mutexes) {
      if (edges_ != nullptr)
        for (const std::string& h : held_)
          edges_->push_back(LockEdge{h, m, std::string(rel_), line});
    }
    held_.insert(held_.end(), mutexes.begin(), mutexes.end());
  }

  void check_throw(std::size_t b, std::size_t e) {
    if (b + 1 >= e || toks_[b + 1].is(";")) return;  // rethrow
    // Thrown type: last identifier of the qualified name before '(' or '{'.
    std::string type;
    for (std::size_t i = b + 1; i < e; ++i) {
      if (toks_[i].is("(") || toks_[i].is("{")) break;
      if (toks_[i].kind == TokKind::kIdent && !toks_[i].ident("std"))
        type = toks_[i].text;
    }
    if (type.empty()) return;
    const int line = toks_[b].line;
    if (!file_throw_type_.empty() && type != file_throw_type_) {
      add("throw-contract", line,
          "this file may only throw " + file_throw_type_ + ", found throw " +
              type);
      return;
    }
    if (file_throw_type_.empty() && validate_ctx_ &&
        type != "invalid_argument") {
      add("throw-contract", line,
          "config validation must throw std::invalid_argument, found throw " +
              type + " (in " + (cur_fn_.empty() ? "function" : cur_fn_) + ")");
    }
  }

  void check_bare_lock(std::size_t b, std::size_t e) {
    for (std::size_t i = b; i + 2 < e; ++i) {
      if (toks_[i].kind != TokKind::kIdent) continue;
      if (!toks_[i + 1].is(".") && !toks_[i + 1].is("->")) continue;
      const std::string& method = toks_[i + 2].text;
      if (method != "lock" && method != "unlock" && method != "try_lock")
        continue;
      if (i + 3 >= e || !toks_[i + 3].is("(")) continue;
      const Resolved r = resolve(toks_[i].text);
      if (!r.found || r.info.cls != VarClass::kMutex) continue;
      add("bare-lock", toks_[i].line,
          "bare ." + method + "() on mutex '" + toks_[i].text +
              "'; use std::lock_guard / std::scoped_lock so unlock is "
              "exception-safe");
    }
  }

  void check_assignment(std::size_t b, std::size_t e) {
    // Find the top-level assignment (parens/brackets were already jumped by
    // the statement scanner, but this range may still contain them).
    std::size_t op = kNpos;
    bool incdec = false;
    for (std::size_t i = b; i < e; ++i) {
      const std::string& s = toks_[i].text;
      if ((s == "(" || s == "[" || s == "{") && match_[i] != kNpos &&
          match_[i] < e) {
        i = match_[i];
        continue;
      }
      if (s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
          s == "%=" || s == "|=" || s == "&=" || s == "^=" || s == "<<=" ||
          s == ">>=") {
        op = i;
        break;
      }
      if (s == "++" || s == "--") {
        op = i;
        incdec = true;
        break;
      }
    }
    if (op == kNpos) return;

    // LHS target: root identifier plus final member name of the access chain.
    std::size_t lb = b, le = op;
    if (incdec && op == b) {  // pre-increment: target follows the operator
      lb = b + 1;
      le = e;
    }
    std::string root, last;
    bool keyed = false, via_deref = false, via_this = false;
    for (std::size_t i = lb; i < le; ++i) {
      const Tok& t = toks_[i];
      if (t.is("*") && root.empty()) via_deref = true;
      if (t.is("[")) {
        keyed = true;
        if (match_[i] != kNpos && match_[i] < le) i = match_[i];
        continue;
      }
      if (t.ident("this")) {
        via_this = true;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        if (root.empty()) root = t.text;
        last = t.text;
      }
    }
    if (root.empty() || via_deref) return;
    if (incdec && last != root && lb == b) {
      // post-increment `x++`: chain ends at the operator, fine as-is.
    }

    // A chain write (`obj.field = ...`) stores into obj: locality (is this
    // loop-local? is it a member/global?) follows the ROOT, while the value
    // class (float? integral? container?) follows the final member when the
    // tree index knows it.
    const Resolved root_res = via_this ? Resolved{} : resolve(root);
    Resolved target;
    std::string target_name = root;
    if (via_this) {
      target = resolve_member(last);
      target_name = last;
    } else if (root_res.found) {
      target = root_res;
      if (root != last) {
        const Resolved m = resolve_member(last);
        if (m.found) {
          target.info.cls = m.info.cls;
          target.info.is_const = m.info.is_const;
          target_name = last;
        }
      }
    } else if (root != last) {
      // Unknown root with a known member name: assume a member write.
      target = resolve_member(last);
      target_name = last;
    }
    const int line = toks_[lb].line;
    const std::string& optext = toks_[op].text;

    check_race_write(target, target_name, via_this, line);

    // Ordered-emission / float-accumulation inside unordered iteration.
    const LoopInfo* loop = innermost_unordered();
    const bool in_merge = merge_ctx_;
    if (loop == nullptr && !in_merge) return;
    if (!target.found) return;
    const bool outside_loop =
        loop != nullptr &&
        (target.is_member || target.is_global ||
         target.scope_idx < static_cast<int>(loop->locals_depth));

    if (optext == "+=" || optext == "-=") {
      if (target.info.cls == VarClass::kFloat &&
          ((loop != nullptr && outside_loop) || in_merge)) {
        add("float-accumulation", line,
            "floating-point accumulation into '" + target_name + "'" +
                (loop != nullptr && outside_loop
                     ? " inside unordered iteration over " + loop->range_desc
                     : " at a merge boundary") +
                "; summation order changes the result bits — accumulate "
                "integrals or sort first");
        return;
      }
      if (loop == nullptr || !outside_loop) return;
      if (target.info.cls == VarClass::kIntegral ||
          target.info.cls == VarClass::kAtomic)
        return;  // commutative
      if (target.info.cls == VarClass::kOrderedContainer &&
          !sorted_after(*loop, target_name)) {
        add("ordered-emission", line,
            "order-sensitive append to '" + target_name +
                "' inside unordered iteration over " + loop->range_desc +
                " (line " + std::to_string(loop->line) +
                ") with no later sort; emit in hash order is nondeterministic");
      }
      return;
    }
    if (incdec || loop == nullptr || !outside_loop) return;

    // Plain overwrite.
    const SelCtx sel = sel_.empty() ? SelCtx::kNone : sel_.back();
    if (sel == SelCtx::kTiebroken) return;
    if (sel == SelCtx::kArgmax && optext == "=") {
      add("ordered-emission", line,
          "selection over unordered iteration (loop line " +
              std::to_string(loop->line) + ", range " + loop->range_desc +
              ") assigns '" + target_name +
              "' under a bare comparison; ties resolve in hash order — add a "
              "total-order tie-break");
      return;
    }
    if (optext != "=") return;
    if (keyed) return;  // keyed store: position independent of iteration order
    // RHS referencing the loop element means last-write-wins in hash order.
    bool rhs_literal = true, rhs_loop_dep = false;
    for (std::size_t i = op + 1; i < e; ++i) {
      const Tok& t = toks_[i];
      if (t.kind == TokKind::kIdent) {
        if (!t.ident("true") && !t.ident("false") && !t.ident("nullptr"))
          rhs_literal = false;
        if (is_loop_local(t.text, *loop)) rhs_loop_dep = true;
      } else if (t.kind != TokKind::kNumber && !t.is(";") && !t.is("-")) {
        rhs_literal = false;
      }
    }
    if (rhs_literal || !rhs_loop_dep) return;  // idempotent or loop-invariant
    add("ordered-emission", line,
        "overwrite of '" + target_name +
            "' with loop-dependent value inside unordered iteration over " +
            loop->range_desc + " (line " + std::to_string(loop->line) +
            "); the surviving value depends on hash order");
  }

  void check_race_write(const Resolved& target, const std::string& name,
                        bool via_this, int line) {
    if (!race_scope_ || !target.found || !held_.empty()) return;
    const VarInfo& v = target.info;
    if (v.is_const || v.is_thread_local) return;
    if (v.cls == VarClass::kAtomic || v.cls == VarClass::kMutex ||
        v.cls == VarClass::kGuard)
      return;
    if (target.is_global) {
      add("shared-state-race", line,
          "write to mutable namespace-scope state '" + name +
              "' without a lock guard in concurrency-reachable code; guard "
              "it, make it atomic, or thread_local");
      return;
    }
    if (!target.is_global && !target.is_member && v.is_static) {
      add("shared-state-race", line,
          "write to function-local static '" + name +
              "' without a lock guard in concurrency-reachable code");
      return;
    }
    if ((target.is_member || via_this) && !cur_cls_.empty() &&
        cur_fn_ != cur_cls_) {  // ctors/dtors run before sharing starts
      auto it = tree_.classes.find(cur_cls_);
      if (it != tree_.classes.end() && it->second.has_mutex &&
          it->second.members.count(name) != 0) {
        add("shared-state-race", line,
            "member '" + name + "' of mutex-owning class " + cur_cls_ +
                " written without holding a guard");
      }
    }
  }

  void check_emission(std::size_t b, std::size_t e) {
    const LoopInfo* loop = innermost_unordered();
    if (loop == nullptr) return;

    // Stream emission: `os << ...` where os is an ostream (or std::cout).
    bool has_shift = false;
    for (std::size_t i = b; i < e; ++i)
      if (toks_[i].is("<<")) has_shift = true;
    if (has_shift && toks_[b].kind == TokKind::kIdent) {
      std::string root = toks_[b].text;
      std::size_t rb = b;
      if (toks_[b].ident("std") && b + 2 < e && toks_[b + 1].is("::")) {
        root = toks_[b + 2].text;
        rb = b + 2;
      }
      const bool std_stream =
          root == "cout" || root == "cerr" || root == "clog";
      const Resolved r = resolve(root);
      if (std_stream || (r.found && r.info.cls == VarClass::kOStream)) {
        add("ordered-emission", toks_[rb].line,
            "stream emission to '" + root +
                "' inside unordered iteration over " + loop->range_desc +
                " (line " + std::to_string(loop->line) +
                "); output order is hash order — collect and sort first");
        return;
      }
    }

    for (std::size_t i = b; i + 1 < e; ++i) {
      if (toks_[i].kind != TokKind::kIdent) continue;
      // Callback invocation: `cb(...)` where cb is a std::function.
      if (toks_[i + 1].is("(") &&
          (i == b || (!toks_[i - 1].is(".") && !toks_[i - 1].is("->") &&
                      !toks_[i - 1].is("::")))) {
        const Resolved r = resolve(toks_[i].text);
        if (r.found && r.info.cls == VarClass::kStdFunction) {
          add("ordered-emission", toks_[i].line,
              "callback '" + toks_[i].text +
                  "' invoked inside unordered iteration over " +
                  loop->range_desc + " (line " + std::to_string(loop->line) +
                  "); events are emitted in hash order — buffer and sort, or "
                  "allow explicitly if every consumer re-sorts");
          continue;
        }
      }
      // Order-sensitive append: `out.push_back(...)` into an outer ordered
      // container with no later sort.
      if ((toks_[i + 1].is(".") || toks_[i + 1].is("->")) && i + 3 < e &&
          toks_[i + 2].kind == TokKind::kIdent &&
          is_emit_method(toks_[i + 2].text) && toks_[i + 3].is("(")) {
        const std::string& recv = toks_[i].text;
        const Resolved r = resolve(recv);
        if (!r.found) continue;
        const bool outside = r.is_member || r.is_global ||
                             r.scope_idx < static_cast<int>(loop->locals_depth);
        if (!outside) continue;
        if (r.info.cls == VarClass::kOStream) {
          add("ordered-emission", toks_[i].line,
              "write to stream '" + recv +
                  "' inside unordered iteration over " + loop->range_desc +
                  "; output order is hash order");
          continue;
        }
        if (r.info.cls != VarClass::kOrderedContainer) continue;
        if (sorted_after(*loop, recv)) continue;
        add("ordered-emission", toks_[i].line,
            "append to '" + recv + "' inside unordered iteration over " +
                loop->range_desc + " (line " + std::to_string(loop->line) +
                ") with no later sort over '" + recv +
                "'; element order is hash order");
      }
    }
  }

  // -- fields ---------------------------------------------------------------

  std::string_view rel_;
  const std::vector<Tok>& toks_;
  const std::vector<std::string>& raw_lines_;
  const std::vector<AllowEntry>& allow_;
  const AnalyzeOptions& opts_;
  bool race_scope_;
  const FileIndex& file_idx_;
  const TreeIndex& tree_;
  std::vector<Violation>* out_;
  std::vector<LockEdge>* edges_;

  std::vector<std::size_t> match_;
  std::vector<std::unordered_map<std::string, VarInfo>> locals_;
  std::vector<LoopInfo> loops_;
  std::vector<SelCtx> sel_;
  std::vector<std::string> held_;  // mutexes currently guarded, in order
  std::string cur_cls_;
  std::string cur_fn_;
  std::size_t fn_end_ = 0;
  bool validate_ctx_ = false;
  bool merge_ctx_ = false;
  std::string file_throw_type_;
};

}  // namespace

TreeIndex index_tree(const std::vector<scan::SourceFile>& files) {
  TreeIndex tree;
  for (const scan::SourceFile& f : files) {  // load_tree sorts by rel_path
    const std::string blanked = scan::blank_comments_and_literals(f.contents);
    tree.files[f.rel_path] = build_index(lex(blanked), f.contents);
  }
  std::vector<std::string> paths;
  paths.reserve(tree.files.size());
  for (const auto& [path, idx] : tree.files) paths.push_back(path);
  std::sort(paths.begin(), paths.end());
  auto merge_var = [](std::unordered_map<std::string, VarInfo>& into,
                      const std::string& name, const VarInfo& v) {
    auto it = into.find(name);
    if (it == into.end()) {
      into.emplace(name, v);
      return;
    }
    // A classified declaration beats an unknown one; on genuine cross-class
    // collisions, unordered wins so the determinism checks stay conservative
    // (a vector member named like an unordered member elsewhere must not
    // mask hash-order iteration).
    if ((it->second.cls == VarClass::kOther && v.cls != VarClass::kOther) ||
        (v.cls == VarClass::kUnordered &&
         it->second.cls != VarClass::kUnordered))
      it->second = v;
  };
  for (const std::string& path : paths) {
    const FileIndex& idx = tree.files[path];
    std::vector<std::string> cls_names;
    for (const auto& [name, cls] : idx.classes) cls_names.push_back(name);
    std::sort(cls_names.begin(), cls_names.end());
    for (const std::string& cname : cls_names) {
      const ClassInfo& cls = idx.classes.at(cname);
      ClassInfo& merged = tree.classes[cname];
      merged.has_mutex = merged.has_mutex || cls.has_mutex;
      std::vector<std::string> mnames;
      for (const auto& [name, v] : cls.members) mnames.push_back(name);
      std::sort(mnames.begin(), mnames.end());
      for (const std::string& m : mnames) {
        merge_var(merged.members, m, cls.members.at(m));
        merge_var(tree.members, m, cls.members.at(m));
      }
    }
    std::vector<std::string> gnames;
    for (const auto& [name, v] : idx.globals) gnames.push_back(name);
    std::sort(gnames.begin(), gnames.end());
    for (const std::string& g : gnames)
      merge_var(tree.globals, g, idx.globals.at(g));
  }
  return tree;
}

std::vector<Violation> analyze_source(std::string_view rel_path,
                                      std::string_view contents,
                                      const std::vector<AllowEntry>& allow,
                                      const AnalyzeOptions& opts,
                                      bool race_scope, const TreeIndex& tree,
                                      std::vector<LockEdge>* lock_edges) {
  std::vector<Violation> out;
  const std::string blanked = scan::blank_comments_and_literals(contents);
  const std::vector<Tok> toks = lex(blanked);
  const std::vector<std::string> raw_lines = scan::split_lines(contents);
  static const FileIndex kEmpty;
  auto it = tree.files.find(std::string(rel_path));
  const FileIndex& idx = it != tree.files.end() ? it->second : kEmpty;
  Walker walker(rel_path, toks, raw_lines, allow, opts, race_scope, idx, tree,
                &out, lock_edges);
  walker.run();
  scan::sort_violations(out);
  return out;
}

std::vector<Violation> lock_order_violations(
    const std::vector<LockEdge>& edges) {
  // Deterministic cycle search over the acquired-before digraph: sorted
  // adjacency, DFS from sorted roots, first back edge reported.
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, const LockEdge*> site;
  for (const LockEdge& e : edges) {
    adj[e.before].insert(e.after);
    auto key = std::make_pair(e.before, e.after);
    auto it = site.find(key);
    if (it == site.end() ||
        std::tie(e.file, e.line) < std::tie(it->second->file, it->second->line))
      site[key] = &e;
  }
  std::vector<Violation> out;
  std::set<std::string> done;
  std::vector<std::string> path;
  std::set<std::string> on_path;

  std::function<bool(const std::string&)> dfs = [&](const std::string& n) {
    if (on_path.count(n) != 0) {
      // Found a cycle: n .. back to n.
      std::string desc;
      auto start = std::find(path.begin(), path.end(), n);
      for (auto it2 = start; it2 != path.end(); ++it2) desc += *it2 + " -> ";
      desc += n;
      const LockEdge* rep = site[{path.back(), n}];
      out.push_back(Violation{
          rep != nullptr ? rep->file : "", rep != nullptr ? rep->line : 0,
          "lock-order",
          "inconsistent mutex acquisition order: " + desc +
              "; pick one global order or use std::scoped_lock"});
      return true;
    }
    if (done.count(n) != 0) return false;
    on_path.insert(n);
    path.push_back(n);
    bool found = false;
    auto it = adj.find(n);
    if (it != adj.end())
      for (const std::string& m : it->second)
        if (dfs(m)) {
          found = true;
          break;
        }
    path.pop_back();
    on_path.erase(n);
    done.insert(n);
    return found;
  };
  for (const auto& [n, succ] : adj)
    if (done.count(n) == 0 && dfs(n)) break;  // one cycle is enough to act on
  return out;
}

std::vector<Violation> analyze_tree(const std::string& root,
                                    const std::vector<std::string>& subdirs,
                                    const std::vector<AllowEntry>& allow,
                                    const AnalyzeOptions& opts) {
  const std::vector<scan::SourceFile> files = scan::load_tree(root, subdirs);
  const TreeIndex tree = index_tree(files);

  // Shared-state-race scope: race roots plus their quoted-include closure.
  std::set<std::string> paths;
  for (const scan::SourceFile& f : files) paths.insert(f.rel_path);
  std::set<std::string> race;
  std::vector<std::string> work;
  for (const scan::SourceFile& f : files)
    for (const std::string& prefix : opts.race_roots)
      if (starts_with(f.rel_path, prefix) && race.insert(f.rel_path).second)
        work.push_back(f.rel_path);
  auto resolve_include = [&](const std::string& from,
                             const std::string& target) -> std::string {
    const std::size_t slash = from.find('/');
    if (slash != std::string::npos) {
      const std::string sibling = from.substr(0, slash + 1) + target;
      if (paths.count(sibling) != 0) return sibling;
    }
    if (paths.count(target) != 0) return target;
    const std::size_t dir = from.rfind('/');
    if (dir != std::string::npos) {
      const std::string local = from.substr(0, dir + 1) + target;
      if (paths.count(local) != 0) return local;
    }
    return "";
  };
  while (!work.empty()) {
    const std::string f = work.back();
    work.pop_back();
    auto it = tree.files.find(f);
    if (it == tree.files.end()) continue;
    for (const std::string& inc : it->second.includes) {
      const std::string hit = resolve_include(f, inc);
      if (!hit.empty() && race.insert(hit).second) work.push_back(hit);
    }
  }

  std::vector<Violation> out;
  std::vector<LockEdge> edges;
  std::vector<std::string> rel_paths;
  for (const scan::SourceFile& f : files) {
    rel_paths.push_back(f.rel_path);
    auto v = analyze_source(f.rel_path, f.contents, allow, opts,
                            race.count(f.rel_path) != 0, tree, &edges);
    out.insert(out.end(), v.begin(), v.end());
  }
  for (Violation& v : lock_order_violations(edges)) {
    if (scan::allowed(allow, v.rule, v.file)) continue;
    out.push_back(std::move(v));
  }
  for (const AllowEntry& e : scan::stale_entries(allow, rel_paths)) {
    out.push_back(Violation{
        "tools/analyze_allowlist.txt", 0, "stale-allowlist",
        "allowlist entry '" + e.rule + " " + e.path_suffix +
            "' matches no scanned file; prune it"});
  }
  scan::sort_violations(out);
  return out;
}

}  // namespace dosm::analyze
