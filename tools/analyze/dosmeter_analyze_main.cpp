// dosmeter_analyze — CLI driver for the semantic static analyzer.
//
//   dosmeter_analyze --root <repo-root> [--allowlist <file>] <subdir> [subdir...]
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include "analyze/analyze_core.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::vector<std::string> subdirs;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (args[i] == "--allowlist" && i + 1 < args.size()) {
      allowlist_path = args[++i];
    } else if (args[i] == "--help" || args[i] == "-h") {
      std::cout << "usage: dosmeter_analyze --root <repo-root> "
                   "[--allowlist <file>] <subdir> [subdir...]\n";
      return 0;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "dosmeter_analyze: unknown option " << args[i] << "\n";
      return 2;
    } else {
      subdirs.push_back(args[i]);
    }
  }
  if (subdirs.empty()) {
    std::cerr << "dosmeter_analyze: no subdirectories given (try: src tools)\n";
    return 2;
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "dosmeter_analyze: root is not a directory: " << root << "\n";
    return 2;
  }
  for (const std::string& subdir : subdirs) {
    if (!std::filesystem::is_directory(std::filesystem::path(root) / subdir)) {
      std::cerr << "dosmeter_analyze: no such subdirectory under root: "
                << subdir << "\n";
      return 2;
    }
  }

  if (allowlist_path.empty()) {
    const auto default_path =
        std::filesystem::path(root) / "tools" / "analyze_allowlist.txt";
    if (std::filesystem::exists(default_path))
      allowlist_path = default_path.string();
  }
  std::vector<dosm::analyze::AllowEntry> allow;
  if (!allowlist_path.empty()) {
    if (!std::filesystem::exists(allowlist_path)) {
      std::cerr << "dosmeter_analyze: allowlist not found: " << allowlist_path
                << "\n";
      return 2;
    }
    allow = dosm::scan::parse_allowlist(read_file(allowlist_path));
  }

  const auto violations = dosm::analyze::analyze_tree(root, subdirs, allow);
  for (const auto& v : violations) {
    std::cerr << dosm::scan::format_violation(v) << "\n";
  }
  if (!violations.empty()) {
    std::cerr << "dosmeter_analyze: " << violations.size()
              << " violation(s); legitimate exceptions go in "
                 "tools/analyze_allowlist.txt or an inline "
                 "'analyze:allow(<rule>)' comment\n";
    return 1;
  }
  std::cout << "dosmeter_analyze: clean (" << subdirs.size()
            << " tree(s) scanned)\n";
  return 0;
}
