// Regenerates tests/data/golden_responses/, the checked-in raw HTTP
// response bytes that pin the serve layer's wire format. The golden test
// (tests/serve_golden_test.cpp) replays manifest.txt against a live server
// and compares byte-for-byte, so any refactor of the routing/execution
// path that changes a single response byte fails loudly.
//
// Regenerate ONLY for a deliberate, reviewed wire-format change:
//
//   $ ./make_golden_responses <repo-root>/tests/data/golden_responses
//
// The fixture world is sim::ScenarioConfig::small() published as snapshot
// version 1 — the same fixture tests/serve_test.cpp serves from. /metrics
// is deliberately absent: its body depends on runtime counter state, so
// the test pins only its status line and content type.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "query/engine.h"
#include "query/snapshot.h"
#include "serve/server.h"
#include "sim/scenario.h"

namespace {

struct Case {
  std::string slug;    // file name stem
  std::string engine;  // "main" (small world, version 1) or "empty"
  std::string method;
  std::string target;
  std::string body;  // empty for bodyless requests
};

// Every pre-existing endpoint, success and failure paths alike. Adding a
// case here requires regenerating the fixtures. Duplicate-parameter
// requests are deliberately absent: their semantics are pinned separately
// (they reject as 400 — see tests/serve_test.cpp).
std::vector<Case> cases() {
  return {
      {"root", "main", "GET", "/", ""},
      {"health", "main", "GET", "/healthz", ""},
      {"query_default", "main", "GET", "/query", ""},
      {"query_summary_honeypot", "main", "GET",
       "/query?agg=summary&source=honeypot", ""},
      {"query_summary_min_intensity", "main", "GET",
       "/query?agg=summary&min_intensity=0.5", ""},
      {"query_daily", "main", "GET", "/query?agg=daily", ""},
      {"query_top_targets", "main", "GET", "/query?agg=top-targets&k=7", ""},
      {"query_top_asns", "main", "GET", "/query?agg=top-asns&k=7", ""},
      {"query_top_countries", "main", "GET", "/query?agg=top-countries&k=7",
       ""},
      {"query_events_explain", "main", "GET", "/query?agg=events&k=5&explain=1",
       ""},
      {"query_window_days", "main", "GET",
       "/query?from=2015-02-01&to=2015-03-01", ""},
      {"query_window_seconds", "main", "GET",
       "/query?t0=1420070400&t1=1420675200", ""},
      {"query_prefix", "main", "GET", "/query?prefix=10.0.0.0/8", ""},
      {"query_country", "main", "GET", "/query?country=US", ""},
      {"query_port", "main", "GET", "/query?port=53", ""},
      {"query_post_form", "main", "POST", "/query", "agg=top-targets&k=3"},
      {"notfound", "main", "GET", "/nope", ""},
      {"notfound_deep", "main", "GET", "/query/deep", ""},
      {"method_root", "main", "POST", "/", ""},
      {"method_health", "main", "POST", "/healthz", ""},
      {"method_metrics", "main", "POST", "/metrics", ""},
      {"method_query", "main", "DELETE", "/query", ""},
      {"bad_param", "main", "GET", "/query?bogus=1", ""},
      {"bad_asn", "main", "GET", "/query?asn=abc", ""},
      {"bad_time_mix", "main", "GET", "/query?from=2015-01-01&t0=5", ""},
      {"bad_agg", "main", "GET", "/query?agg=median", ""},
      {"empty_health", "empty", "GET", "/healthz", ""},
      {"empty_query", "empty", "GET", "/query", ""},
  };
}

/// The exact request bytes for a case — the test builds the identical
/// string, so the fixture and the replay can never drift apart.
std::string render_request(const Case& c) {
  std::string raw = c.method + " " + c.target + " HTTP/1.1\r\n";
  raw += "Connection: close\r\n";
  if (!c.body.empty())
    raw += "Content-Length: " + std::to_string(c.body.size()) + "\r\n";
  raw += "\r\n";
  raw += c.body;
  return raw;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one full response (headers + Content-Length body).
std::string read_response(int fd) {
  std::string response;
  char chunk[4096];
  std::size_t need = std::string::npos;
  for (;;) {
    if (need == std::string::npos) {
      const std::size_t head_end = response.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t field = response.find("Content-Length: ");
        if (field == std::string::npos || field > head_end) return response;
        std::size_t length = 0;
        std::from_chars(response.data() + field + 16,
                        response.data() + head_end, length);
        need = head_end + 4 + length;
      }
    }
    if (need != std::string::npos && response.size() >= need)
      return response.substr(0, need);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return response;
    response.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dosm;
  if (argc != 2) {
    std::cerr << "usage: make_golden_responses <output-dir>\n";
    return 2;
  }
  const std::string out_dir = argv[1];

  const auto world = sim::build_world(sim::ScenarioConfig::small());
  query::QueryEngine main_engine;
  main_engine.publish(query::Snapshot::from_store(
      world->store,
      query::BuildContext{world->population.pfx2as(),
                          world->population.geo()},
      1));
  query::QueryEngine empty_engine;

  serve::ServerConfig config;
  config.workers = 1;
  const serve::Server main_server(config, main_engine);
  const serve::Server empty_server(config, empty_engine);

  std::ofstream manifest(out_dir + "/manifest.txt");
  if (!manifest) {
    std::cerr << "cannot write " << out_dir << "/manifest.txt\n";
    return 1;
  }
  for (const Case& c : cases()) {
    const std::uint16_t port =
        c.engine == "main" ? main_server.port() : empty_server.port();
    const int fd = connect_to(port);
    if (fd < 0) {
      std::cerr << c.slug << ": connect failed\n";
      return 1;
    }
    std::string response;
    if (send_all(fd, render_request(c))) response = read_response(fd);
    ::close(fd);
    if (response.empty()) {
      std::cerr << c.slug << ": empty response\n";
      return 1;
    }
    std::ofstream out(out_dir + "/" + c.slug + ".bin", std::ios::binary);
    out.write(response.data(),
              static_cast<std::streamsize>(response.size()));
    if (!out) {
      std::cerr << c.slug << ": write failed\n";
      return 1;
    }
    manifest << c.slug << '\t' << c.engine << '\t' << c.method << '\t'
             << c.target << '\t' << c.body << '\n';
    std::cout << c.slug << ": " << response.size() << " bytes\n";
  }
  return 0;
}
