#!/usr/bin/env bash
# tools/check.sh — the repo's correctness-tooling driver.
#
# Configures, builds, and tests the project under each checking mode:
#
#   hardened   escalated warning set promoted to errors (build only)
#   asan       AddressSanitizer + UndefinedBehaviorSanitizer, full test suite
#   tsan       ThreadSanitizer, full test suite
#   integer    integer-overflow / lossy-conversion sanitizer, full test suite
#   lint       dosmeter_lint (repo-invariant linter) over src/tools/bench/examples
#   analyze    dosmeter_analyze (semantic determinism & concurrency analyzer)
#              over src/tools/bench/examples
#   tidy       clang-tidy over src/ and tools/ (skipped if not installed)
#   metrics    observability invariants: detect dumps byte-identical with and
#              without --metrics-out, and instrumentation overhead <= 3%
#
# Usage:
#   tools/check.sh            # hardened + asan + tsan + integer + lint +
#                             # analyze + metrics (+ tidy)
#   tools/check.sh asan lint  # just the named modes
#
# Build trees land in build-check-<mode>/ so they never disturb ./build.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
MODES=("$@")
if [ ${#MODES[@]} -eq 0 ]; then
  MODES=(hardened asan tsan integer lint analyze metrics)
  if command -v clang-tidy >/dev/null 2>&1; then
    MODES+=(tidy)
  fi
fi

# Make every sanitizer finding fatal and actionable.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

configure_and_build() {
  local dir="$1"; shift
  local targets=()
  while [ "${1:-}" = "--target" ]; do
    targets+=(--target "$2")
    shift 2
  done
  cmake -B "$dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j "$JOBS" "${targets[@]}"
}

run_tests() {
  ctest --test-dir "$1" --output-on-failure -j "$JOBS"
}

for mode in "${MODES[@]}"; do
  echo
  echo "==================================================================="
  echo "== check.sh mode: $mode"
  echo "==================================================================="
  case "$mode" in
    hardened)
      configure_and_build "$ROOT/build-check-hardened" -DDOSMETER_HARDENED=ON
      ;;
    asan)
      configure_and_build "$ROOT/build-check-asan" -DDOSMETER_SANITIZE=address
      run_tests "$ROOT/build-check-asan"
      ;;
    tsan)
      configure_and_build "$ROOT/build-check-tsan" -DDOSMETER_SANITIZE=thread
      run_tests "$ROOT/build-check-tsan"
      ;;
    integer)
      configure_and_build "$ROOT/build-check-integer" -DDOSMETER_SANITIZE=integer
      run_tests "$ROOT/build-check-integer"
      ;;
    lint)
      configure_and_build "$ROOT/build-check-lint" --target dosmeter_lint
      "$ROOT/build-check-lint/tools/dosmeter_lint" --root "$ROOT" \
        src tools bench examples
      ;;
    analyze)
      configure_and_build "$ROOT/build-check-lint" --target dosmeter_analyze
      "$ROOT/build-check-lint/tools/dosmeter_analyze" --root "$ROOT" \
        src tools bench examples
      ;;
    metrics)
      configure_and_build "$ROOT/build-check-metrics" \
        --target dosmeter --target bench_micro_pipeline
      workdir="$ROOT/build-check-metrics/metrics-determinism"
      mkdir -p "$workdir"
      # The no-perturbation invariant: the analysis output must be
      # byte-identical whether or not metrics are exported.
      "$ROOT/build-check-metrics/tools/dosmeter" detect --quiet \
        --save-events "$workdir/plain.bin"
      "$ROOT/build-check-metrics/tools/dosmeter" detect --quiet \
        --save-events "$workdir/instrumented.bin" \
        --metrics-out "$workdir/metrics.json"
      cmp "$workdir/plain.bin" "$workdir/instrumented.bin"
      test -s "$workdir/metrics.json"
      echo "metrics determinism: event dumps byte-identical with/without --metrics-out"
      # The cost side of the contract: instrumentation overhead <= 3% on the
      # packet-dense Moore pipeline (the gate exits non-zero on breach).
      "$ROOT/build-check-metrics/bench/bench_micro_pipeline" --smoke \
        --out "$workdir/BENCH_micro_pipeline.json"
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; cannot run tidy mode" >&2
        exit 1
      fi
      configure_and_build "$ROOT/build-check-lint" --target tidy
      ;;
    *)
      echo "unknown mode: $mode (expected hardened|asan|tsan|integer|lint|analyze|tidy|metrics)" >&2
      exit 2
      ;;
  esac
done

echo
echo "check.sh: all requested modes passed (${MODES[*]})"
