// dosmeter — command-line runner for the full characterization pipeline.
//
// Builds a simulated world (or a paper-default one), runs every analysis,
// prints a report to stdout, and optionally exports machine-readable CSVs.
//
// Usage:
//   dosmeter [options]
//     --seed N            world seed                  (default 42)
//     --days N            study window length in days (default 731)
//     --domains N         Web domains in the namespace (default 60000)
//     --direct N          ground-truth direct attacks/day      (default 440)
//     --reflection N      ground-truth reflection attacks/day  (default 75)
//     --out DIR           write CSV reports into DIR
//     --quiet             suppress the text report
//     --help
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "common/table.h"
#include "core/impact.h"
#include "core/joint.h"
#include "core/mail_impact.h"
#include "core/migration_analysis.h"
#include "core/ports.h"
#include "core/serialize.h"
#include "core/taxonomy.h"
#include "dps/classifier.h"
#include "sim/scenario.h"

namespace {

using namespace dosm;

struct Options {
  sim::ScenarioConfig scenario;
  std::string out_dir;
  std::string save_events;  // binary event dump to write
  bool quiet = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "dosmeter — macroscopic DoS-ecosystem characterization\n"
      "  --seed N        world seed (default 42)\n"
      "  --days N        study window length in days (default 731)\n"
      "  --domains N     Web domains in the namespace (default 60000)\n"
      "  --direct N      ground-truth direct attacks/day (default 440)\n"
      "  --reflection N  ground-truth reflection attacks/day (default 75)\n"
      "  --out DIR       write CSV reports into DIR\n"
      "  --save-events F write the detected events as a binary dump\n"
      "  --quiet         suppress the text report\n";
  std::exit(code);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--seed") options.scenario.seed = std::stoull(need_value(i));
    else if (arg == "--days") {
      const int days = std::stoi(need_value(i));
      if (days < 2) {
        std::cerr << "--days must be >= 2\n";
        usage(2);
      }
      options.scenario.window.end = civil_from_days(
          days_from_civil(options.scenario.window.start) + days - 1);
    } else if (arg == "--domains") {
      options.scenario.hosting.num_domains = std::stoi(need_value(i));
    } else if (arg == "--direct") {
      options.scenario.attacker.direct_per_day = std::stod(need_value(i));
    } else if (arg == "--reflection") {
      options.scenario.attacker.reflection_per_day = std::stod(need_value(i));
    } else if (arg == "--out") {
      options.out_dir = need_value(i);
    } else if (arg == "--save-events") {
      options.save_events = need_value(i);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  return options;
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << content;
}

}  // namespace

int main(int argc, char** argv) try {
  const Options options = parse_options(argc, argv);
  const auto& config = options.scenario;

  std::cerr << "[dosmeter] building " << config.window.num_days()
            << "-day world (seed " << config.seed << ", "
            << config.hosting.num_domains << " domains)...\n";
  const auto world = sim::build_world(config);
  std::cerr << "[dosmeter] " << world->store.size() << " detected events ("
            << world->truth.size() << " ground-truth attacks)\n";

  const auto& pfx2as = world->population.pfx2as();
  const dps::Classifier classifier(world->providers, world->names);
  const auto timelines = dps::all_timelines(world->dns, classifier);
  const core::ImpactAnalysis impact(world->store, world->dns);
  const core::MailImpactAnalysis mail(world->store, world->dns);
  const core::JointAttackAnalysis joint(world->store);
  const auto taxonomy = core::classify_websites(impact, timelines, world->dns);
  const core::MigrationAnalysis migration(impact, timelines);

  if (!options.quiet) {
    print_section(std::cout, "Attack events");
    TextTable table({"source", "#events", "#targets", "#/24s", "#ASNs"});
    for (const auto filter :
         {core::SourceFilter::kTelescope, core::SourceFilter::kHoneypot,
          core::SourceFilter::kCombined}) {
      const auto summary = world->store.summarize(filter, pfx2as);
      table.add_row({core::to_string(filter),
                     human_count(double(summary.events)),
                     human_count(double(summary.unique_targets)),
                     human_count(double(summary.unique_slash24)),
                     human_count(double(summary.unique_asns))});
    }
    std::cout << table;
    std::cout << "joint: " << joint.common_targets() << " common targets, "
              << joint.joint_targets() << " simultaneous\n";

    print_section(std::cout, "Web impact");
    std::cout << "sites ever on attacked IPs: " << impact.attacked_domains()
              << "/" << impact.web_domains() << " ("
              << percent(impact.attacked_domain_fraction(), 1) << "); daily "
              << fixed(impact.affected_daily().daily_mean(), 0) << " ("
              << percent(impact.affected_daily().daily_mean() /
                             double(impact.web_domains()),
                         2)
              << ")\n";
    std::cout << "mail: " << mail.affected_domains() << "/"
              << mail.mail_domains() << " domains' MX hosts attacked\n";

    print_section(std::cout, "DPS taxonomy");
    std::cout << render_taxonomy(taxonomy);
    std::cout << "attack-driven migration cases: " << migration.cases().size()
              << "\n";
  }

  if (!options.save_events.empty()) {
    std::vector<core::AttackEvent> events(world->store.events().begin(),
                                          world->store.events().end());
    core::save_events(options.save_events, events);
    std::cerr << "[dosmeter] wrote " << events.size() << " events to "
              << options.save_events << "\n";
  }

  if (!options.out_dir.empty()) {
    const std::filesystem::path dir(options.out_dir);
    std::filesystem::create_directories(dir);

    // Daily series CSV.
    const auto breakdown =
        world->store.daily_breakdown(core::SourceFilter::kCombined, pfx2as);
    TextTable daily({"date", "attacks", "unique_targets", "targeted_slash16",
                     "targeted_asns", "affected_sites", "affected_mail"});
    for (int d = 0; d < breakdown.attacks.num_days(); ++d) {
      daily.add_row({to_string(world->window.date_of_day(d)),
                     fixed(breakdown.attacks.at(d), 0),
                     fixed(breakdown.unique_targets.at(d), 0),
                     fixed(breakdown.targeted_slash16.at(d), 0),
                     fixed(breakdown.targeted_asns.at(d), 0),
                     fixed(impact.affected_daily().at(d), 0),
                     fixed(mail.affected_daily().at(d), 0)});
    }
    write_file(dir / "daily.csv", daily.to_csv());

    // Provider counts CSV.
    const auto counts = dps::provider_customer_counts(timelines, world->providers);
    TextTable providers({"provider", "customers"});
    for (const auto& provider : world->providers.all())
      providers.add_row({provider.name, std::to_string(counts[provider.id])});
    write_file(dir / "providers.csv", providers.to_csv());

    // Events CSV (every detected event).
    TextTable events({"source", "target", "start_unix", "duration_s",
                      "intensity", "protocol"});
    for (const auto& event : world->store.events()) {
      events.add_row(
          {event.is_telescope() ? "telescope" : "honeypot",
           event.target.to_string(), fixed(event.start, 0),
           fixed(event.duration(), 0), fixed(event.intensity, 3),
           event.is_telescope() ? core::service_name(event.top_port, true)
                                : amppot::to_string(event.reflection)});
    }
    write_file(dir / "events.csv", events.to_csv());

    // Migration cases CSV.
    TextTable cases({"domain", "trigger_day", "migration_day", "delay_days",
                     "site_max_intensity"});
    for (const auto& mc : migration.cases()) {
      cases.add_row({world->dns.entry(mc.domain).name,
                     std::to_string(mc.trigger_attack_day),
                     std::to_string(mc.migration_day),
                     std::to_string(mc.delay_days),
                     fixed(mc.site_max_intensity, 5)});
    }
    write_file(dir / "migrations.csv", cases.to_csv());

    std::cerr << "[dosmeter] wrote daily.csv, providers.csv, events.csv, "
                 "migrations.csv to "
              << dir << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "dosmeter: " << e.what() << "\n";
  return 1;
}
