// dosmeter — command-line runner for the full characterization pipeline.
//
// Builds a simulated world (or a paper-default one), runs every analysis,
// prints a report to stdout, and optionally exports machine-readable CSVs.
//
// Usage:
//   dosmeter [options]
//     --seed N            world seed                  (default 42)
//     --days N            study window length in days (default 731)
//     --domains N         Web domains in the namespace (default 60000)
//     --direct N          ground-truth direct attacks/day      (default 440)
//     --reflection N      ground-truth reflection attacks/day  (default 75)
//     --out DIR           write CSV reports into DIR
//     --quiet             suppress the text report
//     --help
//
//   dosmeter query [world options] [--load-events F] [filters] [aggregations]
//     runs ad-hoc queries against the indexed event store (src/query);
//     see query_usage() below for the filter/aggregation flags.
//
//   dosmeter detect [--seed N] [--threads N] [--shards N] [--save-events F]
//     runs the packet-level detection pipeline (telescope backscatter +
//     honeypot consolidation) over a synthetic capture through the sharded
//     parallel execution layer; output is byte-identical for any --threads.
//
//   dosmeter metrics [--seed N] [--format table|json|prom] [--out F]
//     exercises every instrumented pipeline layer over a small workload and
//     renders the observability registry (src/obs). `detect` and `query`
//     also accept --metrics-out F to dump their metrics after the run;
//     instrumentation never perturbs analysis output (event dumps are
//     byte-identical with metrics on or off). `--listen` passes through to
//     `dosmeter serve`, whose /metrics endpoint scrapes the same registry
//     live.
//
//   dosmeter serve [world options] [--port N] [--workers N] ...
//     starts the HTTP/JSON query server (src/serve) over a simulated
//     world's snapshot, with a live subscription feed (/subscribe, /watch)
//     replaying the dataset day by day; see serve_usage() below.
//
//   dosmeter watch [world options] [--prefix P] [--asn N] [--kind K] ...
//     registers one subscription predicate, replays the dataset through
//     the push dispatcher (src/subscribe), and prints the notifications a
//     live watcher would have received; see watch_usage() below.
//
//   dosmeter archive save|load ...
//     seals a snapshot into the compressed on-disk segment archive
//     (src/storage) and queries it back through the tiered hot/cold path;
//     see archive_usage() below.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "common/strings.h"
#include "common/table.h"
#include "core/impact.h"
#include "core/joint.h"
#include "core/mail_impact.h"
#include "core/migration_analysis.h"
#include "core/ports.h"
#include "core/serialize.h"
#include "core/streaming.h"
#include "core/taxonomy.h"
#include "dps/classifier.h"
#include "ingest/pipeline.h"
#include "net/pcap.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "parallel/detect.h"
#include "parallel/workload.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "serve/server.h"
#include "sim/scenario.h"
#include "storage/archive.h"
#include "storage/tiered.h"
#include "subscribe/dispatcher.h"

namespace {

using namespace dosm;

struct Options {
  sim::ScenarioConfig scenario;
  std::string out_dir;
  std::string save_events;  // binary event dump to write
  bool quiet = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "dosmeter — macroscopic DoS-ecosystem characterization\n"
      "  --seed N        world seed (default 42)\n"
      "  --days N        study window length in days (default 731)\n"
      "  --domains N     Web domains in the namespace (default 60000)\n"
      "  --direct N      ground-truth direct attacks/day (default 440)\n"
      "  --reflection N  ground-truth reflection attacks/day (default 75)\n"
      "  --out DIR       write CSV reports into DIR\n"
      "  --save-events F write the detected events as a binary dump\n"
      "  --quiet         suppress the text report\n"
      "subcommands:\n"
      "  dosmeter query --help    ad-hoc queries over the event store\n"
      "  dosmeter detect --help   packet-level parallel detection\n"
      "  dosmeter metrics --help  pipeline observability view\n"
      "  dosmeter serve --help    HTTP/JSON query server\n"
      "  dosmeter watch --help    push-based subscription replay\n"
      "  dosmeter archive --help  on-disk segment archives\n";
  std::exit(code);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--seed") options.scenario.seed = std::stoull(need_value(i));
    else if (arg == "--days") {
      const int days = std::stoi(need_value(i));
      if (days < 2) {
        std::cerr << "--days must be >= 2\n";
        usage(2);
      }
      options.scenario.window.end = civil_from_days(
          days_from_civil(options.scenario.window.start) + days - 1);
    } else if (arg == "--domains") {
      options.scenario.hosting.num_domains = std::stoi(need_value(i));
    } else if (arg == "--direct") {
      options.scenario.attacker.direct_per_day = std::stod(need_value(i));
    } else if (arg == "--reflection") {
      options.scenario.attacker.reflection_per_day = std::stod(need_value(i));
    } else if (arg == "--out") {
      options.out_dir = need_value(i);
    } else if (arg == "--save-events") {
      options.save_events = need_value(i);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  return options;
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << content;
}

// ---------------------------------------------------------------------------
// `dosmeter detect` — packet-level detection via the parallel pipeline.
// ---------------------------------------------------------------------------

struct DetectOptions {
  parallel::WorkloadConfig workload;
  parallel::ParallelConfig parallel;
  ingest::IngestOptions ingest;
  std::string pcap_in;
  std::string save_pcap;
  std::string save_events;
  std::string metrics_out;
  bool quiet = false;
};

[[noreturn]] void detect_usage(int code) {
  std::cout <<
      "dosmeter detect — packet-level detection (sharded parallel pipeline)\n"
      "  --seed N        workload seed (default 42)\n"
      "  --direct N      ground-truth spoofed attacks (default 400)\n"
      "  --reflection N  ground-truth reflection attacks (default 120)\n"
      "  --hours H       capture window length in hours (default 4)\n"
      "  --pcap F        replay a pcap capture through the batched ingest\n"
      "                  front end (src/ingest) instead of the synthetic\n"
      "                  workload; telescope detection only\n"
      "  --batch-frames N   frames per ingest batch (default 512)\n"
      "  --ring-capacity N  ingest ring capacity in batches (default 8)\n"
      "  --ring-policy P    block|drop on a full ring (default block;\n"
      "                     drop trades determinism for capture latency)\n"
      "  --save-pcap F   write the synthetic telescope capture to F\n"
      "                  (LINKTYPE_RAW) and exit\n"
      "  --threads N     worker threads (default 1)\n"
      "  --shards N      victim-hash shards (default: one per thread)\n"
      "  --save-events F write the fused events as a binary dump\n"
      "  --metrics-out F write pipeline metrics after the run\n"
      "                  (.prom -> Prometheus text, else JSON)\n"
      "  --quiet         suppress the text summary\n"
      "Output is byte-identical for every --threads/--shards setting, every\n"
      "--batch-frames/--ring-capacity setting (with the block policy), and\n"
      "with or without --metrics-out.\n";
  std::exit(code);
}

DetectOptions parse_detect_options(int argc, char** argv) {
  DetectOptions options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      detect_usage(2);
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") detect_usage(0);
    else if (arg == "--seed") options.workload.seed = std::stoull(need_value(i));
    else if (arg == "--direct") {
      options.workload.direct_attacks = std::stoi(need_value(i));
    } else if (arg == "--reflection") {
      options.workload.reflection_attacks = std::stoi(need_value(i));
    } else if (arg == "--hours") {
      options.workload.window_s = std::stod(need_value(i)) * 3600.0;
    } else if (arg == "--threads") {
      options.parallel.threads = std::stoi(need_value(i));
    } else if (arg == "--shards") {
      options.parallel.shards = std::stoi(need_value(i));
    } else if (arg == "--pcap") {
      options.pcap_in = need_value(i);
    } else if (arg == "--save-pcap") {
      options.save_pcap = need_value(i);
    } else if (arg == "--batch-frames") {
      options.ingest.batch_frames =
          static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (arg == "--ring-capacity") {
      options.ingest.ring_capacity =
          static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (arg == "--ring-policy") {
      const std::string policy = need_value(i);
      if (policy == "block") {
        options.ingest.policy = ingest::Backpressure::kBlock;
      } else if (policy == "drop") {
        options.ingest.policy = ingest::Backpressure::kDrop;
      } else {
        std::cerr << "--ring-policy must be block or drop\n";
        detect_usage(2);
      }
    } else if (arg == "--save-events") {
      options.save_events = need_value(i);
    } else if (arg == "--metrics-out") {
      options.metrics_out = need_value(i);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "unknown detect option: " << arg << "\n";
      detect_usage(2);
    }
  }
  if (options.parallel.threads < 1 || options.parallel.shards < 0) {
    std::cerr << "--threads must be >= 1 and --shards >= 0\n";
    detect_usage(2);
  }
  if (options.ingest.batch_frames < 1 || options.ingest.ring_capacity < 1) {
    std::cerr << "--batch-frames and --ring-capacity must be >= 1\n";
    detect_usage(2);
  }
  return options;
}

int detect_main(int argc, char** argv) {
  const DetectOptions options = parse_detect_options(argc, argv);

  // --pcap: the capture comes from a file through the batched ingest front
  // end instead of the synthetic workload generator (telescope path only —
  // there are no honeypot logs in a pcap).
  std::vector<net::PacketRecord> capture_packets;
  std::unique_ptr<amppot::HoneypotFleet> fleet;
  if (!options.pcap_in.empty()) {
    std::ifstream pcap(options.pcap_in, std::ios::binary);
    if (!pcap) {
      std::cerr << "cannot open " << options.pcap_in << "\n";
      return 2;
    }
    capture_packets = ingest::read_packets(pcap, options.ingest);
    std::cerr << "[dosmeter] capture: " << capture_packets.size()
              << " packets from " << options.pcap_in << " (batched ingest, "
              << options.parallel.threads << " threads)\n";
  } else {
    auto workload = parallel::make_workload(options.workload);
    capture_packets = std::move(workload.packets);
    fleet = std::move(workload.fleet);
    std::cerr << "[dosmeter] capture: " << capture_packets.size()
              << " telescope packets, " << fleet->total_requests()
              << " honeypot requests (" << options.parallel.threads
              << " threads, " << options.parallel.effective_shards()
              << " shards)\n";
  }

  if (!options.save_pcap.empty()) {
    std::ofstream out(options.save_pcap, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << options.save_pcap << "\n";
      return 2;
    }
    net::PcapWriter writer(out);
    for (const auto& rec : capture_packets) writer.write_packet(rec);
    std::cerr << "[dosmeter] wrote " << writer.frames_written()
              << " frames to " << options.save_pcap << "\n";
    return 0;
  }

  parallel::ParallelBackscatterDetector detector(options.parallel);
  const auto telescope_events = detector.detect(capture_packets);
  const std::vector<amppot::AmpPotEvent> honeypot_events =
      fleet ? parallel::parallel_harvest(*fleet, {}, options.parallel)
            : std::vector<amppot::AmpPotEvent>{};

  std::vector<core::AttackEvent> events;
  events.reserve(telescope_events.size() + honeypot_events.size());
  for (const auto& event : telescope_events)
    events.push_back(core::from_telescope(event));
  for (const auto& event : honeypot_events)
    events.push_back(core::from_amppot(event));
  std::sort(events.begin(), events.end(), core::canonical_less);

  if (!options.quiet) {
    const auto& stats = detector.stats();
    print_section(std::cout, "Packet-level detection");
    TextTable table({"stage", "count"});
    table.add_row({"telescope packets", std::to_string(stats.packets_seen)});
    table.add_row({"backscatter packets",
                   std::to_string(stats.backscatter_packets)});
    table.add_row({"flows under thresholds",
                   std::to_string(stats.flows_filtered)});
    table.add_row({"telescope events", std::to_string(telescope_events.size())});
    table.add_row({"honeypot events", std::to_string(honeypot_events.size())});
    std::cout << table;
  }

  if (!options.save_events.empty()) {
    core::save_events(options.save_events, events);
    std::cerr << "[dosmeter] wrote " << events.size() << " events to "
              << options.save_events << "\n";
  }
  if (!options.metrics_out.empty()) {
    obs::write_metrics_file(options.metrics_out, obs::MetricsRegistry::global());
    std::cerr << "[dosmeter] wrote metrics to " << options.metrics_out << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `dosmeter query` — ad-hoc queries against the indexed event store.
// ---------------------------------------------------------------------------

struct QueryOptions {
  sim::ScenarioConfig scenario;
  std::string load_events;  // binary dump instead of a simulated world
  query::Query query;
  std::optional<CivilDate> from;
  std::optional<CivilDate> to;
  std::string agg = "summary";
  std::size_t k = 10;
  int threads = 1;
  int segment_days = 0;
  bool explain = false;
  std::string metrics_out;
};

[[noreturn]] void query_usage(int code) {
  std::cout <<
      "dosmeter query — ad-hoc queries over the fused event dataset\n"
      "dataset (pick one):\n"
      "  --seed/--days/--domains/--direct/--reflection   simulate a world\n"
      "  --load-events F   query a binary event dump (dosmeter --save-events);\n"
      "                    ASN/country columns resolve only with a simulated\n"
      "                    world, so those filters match nothing on a dump\n"
      "filters (ANDed):\n"
      "  --from YYYY-MM-DD     events starting on/after this day\n"
      "  --to YYYY-MM-DD       events starting on/before this day\n"
      "  --source S            telescope | honeypot | combined\n"
      "  --prefix A.B.C.D/L    target inside the CIDR prefix\n"
      "  --asn N               origin AS of the target\n"
      "  --country CC          geolocated country of the target\n"
      "  --port N              dominant victim port\n"
      "  --min-intensity X     raw intensity >= X\n"
      "aggregation:\n"
      "  --agg A    summary | daily | top-targets | top-asns | top-countries\n"
      "             | events   (default: summary)\n"
      "  --k N      rows for top-k / events listings (default 10)\n"
      "  --threads N  worker threads for the snapshot build (default 1;\n"
      "               identical output for any value)\n"
      "  --segment-days N  days per sealed snapshot segment (default 0 =\n"
      "               one segment; identical output for any value)\n"
      "  --explain  print the planner's chosen access path\n"
      "  --metrics-out F  write pipeline metrics after the run\n"
      "                   (.prom -> Prometheus text, else JSON)\n";
  std::exit(code);
}

/// Runs one aggregation and prints its table — shared by `dosmeter query`
/// (in-memory snapshots) and `dosmeter archive load` (tiered snapshots), so
/// both paths render byte-identical output for the same dataset. Returns
/// false on an unknown aggregation name.
bool print_aggregation(const query::Snapshot& snapshot,
                       const StudyWindow& window, const query::Query& q,
                       const std::string& agg, std::size_t k, bool explain) {
  std::cout << "query: " << query::to_string(q) << "\n";
  if (explain)
    std::cout << "plan:  " << query::to_string(snapshot.plan(q)) << "\n";

  if (agg == "summary") {
    std::cout << "events:         " << snapshot.count(q) << "\n";
    std::cout << "unique targets: " << snapshot.unique_targets(q) << "\n";
  } else if (agg == "daily") {
    const auto daily = snapshot.daily_attacks(q);
    TextTable table({"date", "attacks"});
    for (int d = 0; d < daily.num_days(); ++d) {
      if (daily.at(d) == 0.0) continue;
      table.add_row({to_string(window.date_of_day(d)), fixed(daily.at(d), 0)});
    }
    std::cout << table;
  } else if (agg == "top-targets") {
    TextTable table({"target", "events"});
    for (const auto& row : snapshot.top_targets(q, k))
      table.add_row({row.target.to_string(), std::to_string(row.events)});
    std::cout << table;
  } else if (agg == "top-asns") {
    TextTable table({"asn", "targets", "events"});
    for (const auto& row : snapshot.top_asns(q, k))
      table.add_row({"AS" + std::to_string(row.asn),
                     std::to_string(row.targets), std::to_string(row.events)});
    std::cout << table;
  } else if (agg == "top-countries") {
    TextTable table({"country", "targets", "share"});
    for (const auto& row : snapshot.top_countries(q, k))
      table.add_row({row.country.to_string(), std::to_string(row.targets),
                     percent(row.share, 2)});
    std::cout << table;
  } else if (agg == "events") {
    const auto rows = snapshot.match_rows(q);
    TextTable table({"start", "target", "source", "intensity", "port"});
    for (std::size_t i = 0; i < rows.size() && i < k; ++i) {
      const auto row = rows[i];
      table.add_row({fixed(snapshot.start_at(row), 0),
                     snapshot.target_at(row).to_string(),
                     snapshot.source_at(row) == core::EventSource::kTelescope
                         ? "telescope"
                         : "honeypot",
                     fixed(snapshot.intensity_at(row), 2),
                     std::to_string(snapshot.top_port_at(row))});
    }
    std::cout << table;
    if (rows.size() > k)
      std::cout << "(" << rows.size() - k << " more rows; raise --k)\n";
  } else {
    return false;
  }
  return true;
}

QueryOptions parse_query_options(int argc, char** argv) {
  QueryOptions options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      query_usage(2);
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") query_usage(0);
    else if (arg == "--seed") options.scenario.seed = std::stoull(need_value(i));
    else if (arg == "--days") {
      const int days = std::stoi(need_value(i));
      if (days < 2) {
        std::cerr << "--days must be >= 2\n";
        query_usage(2);
      }
      options.scenario.window.end = civil_from_days(
          days_from_civil(options.scenario.window.start) + days - 1);
    } else if (arg == "--domains") {
      options.scenario.hosting.num_domains = std::stoi(need_value(i));
    } else if (arg == "--direct") {
      options.scenario.attacker.direct_per_day = std::stod(need_value(i));
    } else if (arg == "--reflection") {
      options.scenario.attacker.reflection_per_day = std::stod(need_value(i));
    } else if (arg == "--load-events") {
      options.load_events = need_value(i);
    } else if (arg == "--from") {
      options.from = parse_civil(need_value(i));
    } else if (arg == "--to") {
      options.to = parse_civil(need_value(i));
    } else if (arg == "--source") {
      const std::string value = need_value(i);
      if (value == "telescope")
        options.query.from_source(core::SourceFilter::kTelescope);
      else if (value == "honeypot")
        options.query.from_source(core::SourceFilter::kHoneypot);
      else if (value == "combined")
        options.query.from_source(core::SourceFilter::kCombined);
      else {
        std::cerr << "--source must be telescope|honeypot|combined\n";
        query_usage(2);
      }
    } else if (arg == "--prefix") {
      options.query.in_prefix(net::Prefix::parse(need_value(i)));
    } else if (arg == "--asn") {
      options.query.in_asn(static_cast<meta::Asn>(std::stoul(need_value(i))));
    } else if (arg == "--country") {
      options.query.in_country(meta::CountryCode(need_value(i)));
    } else if (arg == "--port") {
      options.query.on_port(static_cast<std::uint16_t>(std::stoi(need_value(i))));
    } else if (arg == "--min-intensity") {
      options.query.at_least(std::stod(need_value(i)));
    } else if (arg == "--agg") {
      options.agg = need_value(i);
    } else if (arg == "--k") {
      options.k = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (arg == "--threads") {
      options.threads = std::stoi(need_value(i));
      if (options.threads < 1) {
        std::cerr << "--threads must be >= 1\n";
        query_usage(2);
      }
    } else if (arg == "--segment-days") {
      options.segment_days = std::stoi(need_value(i));
      if (options.segment_days < 0) {
        std::cerr << "--segment-days must be >= 0\n";
        query_usage(2);
      }
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--metrics-out") {
      options.metrics_out = need_value(i);
    } else {
      std::cerr << "unknown query option: " << arg << "\n";
      query_usage(2);
    }
  }
  return options;
}

int query_main(int argc, char** argv) {
  QueryOptions options = parse_query_options(argc, argv);

  // Materialize the snapshot: either over a simulated world (full metadata)
  // or over a binary event dump (empty metadata).
  std::shared_ptr<const query::Snapshot> snapshot;
  StudyWindow window = options.scenario.window;
  const meta::PrefixToAsMap empty_pfx2as;
  const meta::GeoDatabase empty_geo;
  std::unique_ptr<sim::World> world;
  if (!options.load_events.empty()) {
    const auto events = core::load_events(options.load_events);
    std::cerr << "[dosmeter] loaded " << events.size() << " events from "
              << options.load_events << "\n";
    snapshot = query::Snapshot::build(
        window, events,
        query::BuildContext{empty_pfx2as, empty_geo, options.threads,
                            options.segment_days});
  } else {
    std::cerr << "[dosmeter] building " << window.num_days()
              << "-day world (seed " << options.scenario.seed << ")...\n";
    world = sim::build_world(options.scenario);
    snapshot = query::Snapshot::from_store(
        world->store,
        query::BuildContext{world->population.pfx2as(),
                            world->population.geo(), options.threads,
                            options.segment_days});
  }
  std::cerr << "[dosmeter] snapshot ready: " << snapshot->size()
            << " events indexed in " << snapshot->num_segments()
            << " segment(s)\n";

  // Day filters resolve against the snapshot's window.
  if (options.from || options.to) {
    const double begin =
        options.from ? static_cast<double>(unix_from_civil(*options.from))
                     : static_cast<double>(window.start_time());
    const double end =
        options.to ? static_cast<double>(unix_from_civil(*options.to) +
                                         kSecondsPerDay)
                   : static_cast<double>(window.end_time());
    options.query.between(begin, end);
  }
  if (!print_aggregation(*snapshot, window, options.query, options.agg,
                         options.k, options.explain)) {
    std::cerr << "unknown aggregation: " << options.agg << "\n";
    query_usage(2);
  }
  if (!options.metrics_out.empty()) {
    obs::write_metrics_file(options.metrics_out, obs::MetricsRegistry::global());
    std::cerr << "[dosmeter] wrote metrics to " << options.metrics_out << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `dosmeter metrics` — exercise every instrumented layer, show the registry.
// ---------------------------------------------------------------------------

struct MetricsOptions {
  std::uint64_t seed = 42;
  std::string format = "table";  // table | json | prom
  std::string out;
  std::string listen;  // [ADDR:]PORT — keep serving /metrics live
};

[[noreturn]] void metrics_usage(int code) {
  std::cout <<
      "dosmeter metrics — pipeline observability view\n"
      "Runs a small end-to-end workload through every instrumented layer\n"
      "(telescope flow table, honeypot fleet, parallel workers, streaming\n"
      "fusion, query engine) and renders the metrics registry.\n"
      "  --seed N       workload seed (default 42)\n"
      "  --format F     table | json | prom (default table)\n"
      "  --out F        also write the registry to F (.prom -> Prometheus)\n"
      "  --listen [A:]P keep running and serve the registry live at\n"
      "                 http://A:P/metrics — a passthrough to the query\n"
      "                 server (`dosmeter serve`), which scrapes the same\n"
      "                 process-wide registry and adds its own serve.*\n"
      "                 series (requests, cache, admission drops, latency)\n";
  std::exit(code);
}

MetricsOptions parse_metrics_options(int argc, char** argv) {
  MetricsOptions options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      metrics_usage(2);
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") metrics_usage(0);
    else if (arg == "--seed") options.seed = std::stoull(need_value(i));
    else if (arg == "--format") options.format = need_value(i);
    else if (arg == "--out") options.out = need_value(i);
    else if (arg == "--listen") options.listen = need_value(i);
    else {
      std::cerr << "unknown metrics option: " << arg << "\n";
      metrics_usage(2);
    }
  }
  if (options.format != "table" && options.format != "json" &&
      options.format != "prom") {
    std::cerr << "--format must be table|json|prom\n";
    metrics_usage(2);
  }
  return options;
}

int metrics_main(int argc, char** argv) {
  const MetricsOptions options = parse_metrics_options(argc, argv);

  // 1. Packet-level detection (telescope + amppot + parallel metrics).
  parallel::WorkloadConfig workload_config;
  workload_config.seed = options.seed;
  workload_config.direct_attacks = 40;
  workload_config.reflection_attacks = 12;
  workload_config.window_s = 3600.0;
  auto workload = parallel::make_workload(workload_config);
  const parallel::ParallelConfig pc{2, 0};
  parallel::ParallelBackscatterDetector detector(pc);
  const auto telescope_events = detector.detect(workload.packets);
  const auto honeypot_events = parallel::parallel_harvest(*workload.fleet, {}, pc);

  std::vector<core::AttackEvent> events;
  events.reserve(telescope_events.size() + honeypot_events.size());
  for (const auto& event : telescope_events)
    events.push_back(core::from_telescope(event));
  for (const auto& event : honeypot_events)
    events.push_back(core::from_amppot(event));
  std::sort(events.begin(), events.end(), core::canonical_less);

  // 2. Streaming fusion + serving layer (fusion, serialize, query metrics).
  // Workload timestamps are capture-relative seconds; shift them into the
  // study window so both fusion and the snapshot accept them.
  const StudyWindow window = sim::ScenarioConfig{}.window;
  const auto base = static_cast<double>(window.start_time());
  for (auto& event : events) {
    event.start += base;
    event.end += base;
  }
  core::StreamingFusion fusion(window, {}, [](const core::DaySummary&) {});
  for (const auto& event : events) fusion.ingest(event);
  fusion.finish();

  const meta::PrefixToAsMap empty_pfx2as;
  const meta::GeoDatabase empty_geo;
  query::QueryEngine engine;
  engine.publish(query::Snapshot::build(
      window, events, query::BuildContext{empty_pfx2as, empty_geo}, 1));
  const auto snapshot = engine.snapshot();
  snapshot->count(query::Query());  // full scan
  query::Query by_time;
  by_time.between(base, base + 1800.0);
  snapshot->count(by_time);  // time-range plan
  if (!events.empty()) {
    query::Query by_target;
    by_target.in_prefix(net::Prefix(events.front().target, 32));
    snapshot->count(by_target);  // postings plan + clipping
  }

  std::cerr << "[dosmeter] exercised " << events.size()
            << " events through detection, fusion, and serving layers\n";

  // 3. Render the registry.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  if (options.format == "json") {
    std::cout << obs::to_json(snap);
  } else if (options.format == "prom") {
    std::cout << obs::to_prometheus(snap);
  } else {
    print_section(std::cout, "Counters");
    TextTable counters({"metric", "value", "help"});
    for (const auto& c : snap.counters)
      counters.add_row({c.name, std::to_string(c.value), c.help});
    std::cout << counters;
    if (!snap.gauges.empty()) {
      print_section(std::cout, "Gauges");
      TextTable gauges({"metric", "value", "help"});
      for (const auto& g : snap.gauges)
        gauges.add_row({g.name, std::to_string(g.value), g.help});
      std::cout << gauges;
    }
    if (!snap.histograms.empty()) {
      print_section(std::cout, "Histograms");
      TextTable hists({"metric", "count", "mean_ms", "help"});
      for (const auto& h : snap.histograms) {
        const double mean_ms =
            h.count ? h.sum / static_cast<double>(h.count) * 1e3 : 0.0;
        hists.add_row({h.name, std::to_string(h.count), fixed(mean_ms, 3),
                       h.help});
      }
      std::cout << hists;
    }
  }
  if (!options.out.empty()) {
    obs::write_metrics_file(options.out, obs::MetricsRegistry::global());
    std::cerr << "[dosmeter] wrote metrics to " << options.out << "\n";
  }
  if (!options.listen.empty()) {
    serve::ServerConfig server_config;
    const std::size_t colon = options.listen.rfind(':');
    const std::string port_text = colon == std::string::npos
                                      ? options.listen
                                      : options.listen.substr(colon + 1);
    if (colon != std::string::npos)
      server_config.bind_address = options.listen.substr(0, colon);
    server_config.port = static_cast<std::uint16_t>(std::stoul(port_text));
    const serve::Server server(server_config, engine);
    std::cerr << "[dosmeter] serving metrics at http://"
              << server_config.bind_address << ":" << server.port()
              << "/metrics (Ctrl-C to stop)\n";
    std::promise<void>().get_future().wait();  // serve until killed
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `dosmeter serve` — the HTTP/JSON query server (src/serve).
// ---------------------------------------------------------------------------

struct ServeOptions {
  sim::ScenarioConfig scenario;
  std::string load_events;
  serve::ServerConfig server;
  int threads = 1;
  int segment_days = 0;
  int tick_millis = 100;
};

[[noreturn]] void serve_usage(int code) {
  std::cout <<
      "dosmeter serve — HTTP/JSON query server over the fused event dataset\n"
      "dataset (pick one):\n"
      "  --seed/--days/--domains/--direct/--reflection   simulate a world\n"
      "  --load-events F   serve a binary event dump (dosmeter --save-events)\n"
      "server:\n"
      "  --address A       bind address (default 127.0.0.1)\n"
      "  --port N          TCP port (default 8080; 0 picks an ephemeral\n"
      "                    port, printed on startup)\n"
      "  --workers N       worker threads (default 4)\n"
      "  --queue N         pending-connection capacity; beyond it the\n"
      "                    acceptor answers 429 (default 64)\n"
      "  --cache-bytes N   result-cache budget in bytes (default 8 MiB;\n"
      "                    0 disables caching)\n"
      "  --max-rows N      per-query row budget -> 422 (default unlimited)\n"
      "  --max-millis N    per-query time budget -> 422 (default unlimited)\n"
      "  --threads N       snapshot build threads (default 1)\n"
      "  --segment-days N  days per snapshot segment (default 0 = one)\n"
      "subscriptions:\n"
      "  --tick-millis N   delay between replayed study days on the live\n"
      "                    alert feed (default 100; 0 replays instantly).\n"
      "                    The dataset's events stream through the push\n"
      "                    dispatcher day by day, so /subscribe + /watch\n"
      "                    clients see a live feed.\n"
      "endpoints: /  /healthz  /metrics  /query  /subscribe  /watch — see\n"
      "src/serve/api.h for the /query parameters (same filters as\n"
      "`dosmeter query`) and src/serve/subscribe_api.h for /subscribe and\n"
      "/watch.\n";
  std::exit(code);
}

ServeOptions parse_serve_options(int argc, char** argv) {
  ServeOptions options;
  options.server.port = 8080;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      serve_usage(2);
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") serve_usage(0);
    else if (arg == "--seed") options.scenario.seed = std::stoull(need_value(i));
    else if (arg == "--days") {
      const int days = std::stoi(need_value(i));
      if (days < 2) {
        std::cerr << "--days must be >= 2\n";
        serve_usage(2);
      }
      options.scenario.window.end = civil_from_days(
          days_from_civil(options.scenario.window.start) + days - 1);
    } else if (arg == "--domains") {
      options.scenario.hosting.num_domains = std::stoi(need_value(i));
    } else if (arg == "--direct") {
      options.scenario.attacker.direct_per_day = std::stod(need_value(i));
    } else if (arg == "--reflection") {
      options.scenario.attacker.reflection_per_day = std::stod(need_value(i));
    } else if (arg == "--load-events") {
      options.load_events = need_value(i);
    } else if (arg == "--address") {
      options.server.bind_address = need_value(i);
    } else if (arg == "--port") {
      options.server.port = static_cast<std::uint16_t>(std::stoul(need_value(i)));
    } else if (arg == "--workers") {
      options.server.workers = std::stoul(need_value(i));
      if (options.server.workers == 0) {
        std::cerr << "--workers must be >= 1\n";
        serve_usage(2);
      }
    } else if (arg == "--queue") {
      options.server.queue_capacity = std::stoul(need_value(i));
    } else if (arg == "--cache-bytes") {
      options.server.cache_bytes = std::stoul(need_value(i));
    } else if (arg == "--max-rows") {
      options.server.max_rows = std::stoull(need_value(i));
    } else if (arg == "--max-millis") {
      options.server.max_millis = std::stoull(need_value(i));
    } else if (arg == "--threads") {
      options.threads = std::stoi(need_value(i));
      if (options.threads < 1) {
        std::cerr << "--threads must be >= 1\n";
        serve_usage(2);
      }
    } else if (arg == "--segment-days") {
      options.segment_days = std::stoi(need_value(i));
      if (options.segment_days < 0) {
        std::cerr << "--segment-days must be >= 0\n";
        serve_usage(2);
      }
    } else if (arg == "--tick-millis") {
      options.tick_millis = std::stoi(need_value(i));
      if (options.tick_millis < 0) {
        std::cerr << "--tick-millis must be >= 0\n";
        serve_usage(2);
      }
    } else {
      std::cerr << "unknown serve option: " << arg << "\n";
      serve_usage(2);
    }
  }
  return options;
}

int serve_main(int argc, char** argv) {
  const ServeOptions options = parse_serve_options(argc, argv);

  // Materialize the snapshot the same way `dosmeter query` does, keeping
  // the event list around for the live subscription replay below.
  std::shared_ptr<const query::Snapshot> snapshot;
  const StudyWindow window = options.scenario.window;
  const meta::PrefixToAsMap empty_pfx2as;
  const meta::GeoDatabase empty_geo;
  std::unique_ptr<sim::World> world;
  std::vector<core::AttackEvent> events;
  if (!options.load_events.empty()) {
    events = core::load_events(options.load_events);
    std::cerr << "[dosmeter] loaded " << events.size() << " events from "
              << options.load_events << "\n";
    snapshot = query::Snapshot::build(
        window, events,
        query::BuildContext{empty_pfx2as, empty_geo, options.threads,
                            options.segment_days},
        /*version=*/1);
  } else {
    std::cerr << "[dosmeter] building " << window.num_days()
              << "-day world (seed " << options.scenario.seed << ")...\n";
    world = sim::build_world(options.scenario);
    events.assign(world->store.events().begin(), world->store.events().end());
    snapshot = query::Snapshot::from_store(
        world->store,
        query::BuildContext{world->population.pfx2as(),
                            world->population.geo(), options.threads,
                            options.segment_days},
        /*version=*/1);
  }
  std::cerr << "[dosmeter] snapshot ready: " << snapshot->size()
            << " events indexed in " << snapshot->num_segments()
            << " segment(s)\n";

  query::QueryEngine engine;
  engine.publish(std::move(snapshot));

  subscribe::DispatcherConfig dispatcher_config;
  dispatcher_config.window = window;
  if (world != nullptr) {
    dispatcher_config.pfx2as = &world->population.pfx2as();
    dispatcher_config.geo = &world->population.geo();
  }
  subscribe::Dispatcher dispatcher(dispatcher_config);
  const serve::Server server(options.server, engine, &dispatcher);
  std::cerr << "[dosmeter] serving at http://" << options.server.bind_address
            << ":" << server.port() << "/query (" << options.server.workers
            << " workers, queue " << options.server.queue_capacity
            << ", cache " << options.server.cache_bytes
            << " bytes; Ctrl-C to stop)\n";

  // Live feed: replay the dataset through the dispatcher day by day so
  // /subscribe + /watch clients get a stream instead of a fait accompli.
  std::thread replay([&options, &dispatcher, &events, window] {
    std::sort(events.begin(), events.end(), core::canonical_less);
    int open_day = -1;
    for (const auto& event : events) {
      const auto t = static_cast<UnixSeconds>(event.start);
      const int day = window.contains(t) ? window.day_of(t) : -1;
      if (day != open_day && open_day != -1) {
        dispatcher.tick();
        if (options.tick_millis > 0)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options.tick_millis));
      }
      open_day = day;
      dispatcher.ingest(event);
    }
    dispatcher.tick();
    std::cerr << "[dosmeter] replay complete: "
              << dispatcher.events_ingested()
              << " events dispatched to subscribers\n";
  });
  std::promise<void>().get_future().wait();  // serve until killed
  replay.join();                             // unreachable; keeps the thread owned
  return 0;
}

// ---------------------------------------------------------------------------
// `dosmeter watch` — replay a dataset through the subscription dispatcher.
// ---------------------------------------------------------------------------

struct WatchOptions {
  sim::ScenarioConfig scenario;
  std::string load_events;
  subscribe::Predicate predicate;
  std::size_t max = 50;
};

[[noreturn]] void watch_usage(int code) {
  std::cout <<
      "dosmeter watch — replay a dataset through the subscription layer\n"
      "Registers one subscription, replays the dataset's events through the\n"
      "push dispatcher (one tick per study day, streaming-fusion spike\n"
      "alerts included), and prints the notifications a live watcher would\n"
      "have received. The same predicate fields drive the query server's\n"
      "/subscribe + /watch endpoints (`dosmeter serve`).\n"
      "dataset (pick one):\n"
      "  --seed/--days/--domains/--direct/--reflection   simulate a world\n"
      "  --load-events F   replay a binary event dump (dosmeter\n"
      "                    --save-events); ASN/country resolve only with a\n"
      "                    simulated world, so those filters match nothing\n"
      "                    on a dump\n"
      "predicate (ANDed; none = firehose):\n"
      "  --prefix A.B.C.D/L  victim inside the CIDR prefix\n"
      "  --asn N             victim's origin AS\n"
      "  --country CC        victim's geolocated country\n"
      "  --proto N           IP protocol of the attack (6=TCP, 17=UDP)\n"
      "  --kind K            new-attack | attack-spike | target-spike\n"
      "output:\n"
      "  --max N             notifications to print (default 50; 0 = all)\n";
  std::exit(code);
}

WatchOptions parse_watch_options(int argc, char** argv) {
  WatchOptions options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      watch_usage(2);
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") watch_usage(0);
    else if (arg == "--seed") options.scenario.seed = std::stoull(need_value(i));
    else if (arg == "--days") {
      const int days = std::stoi(need_value(i));
      if (days < 2) {
        std::cerr << "--days must be >= 2\n";
        watch_usage(2);
      }
      options.scenario.window.end = civil_from_days(
          days_from_civil(options.scenario.window.start) + days - 1);
    } else if (arg == "--domains") {
      options.scenario.hosting.num_domains = std::stoi(need_value(i));
    } else if (arg == "--direct") {
      options.scenario.attacker.direct_per_day = std::stod(need_value(i));
    } else if (arg == "--reflection") {
      options.scenario.attacker.reflection_per_day = std::stod(need_value(i));
    } else if (arg == "--load-events") {
      options.load_events = need_value(i);
    } else if (arg == "--prefix") {
      options.predicate.match_prefix(net::Prefix::parse(need_value(i)));
    } else if (arg == "--asn") {
      options.predicate.match_asn(
          static_cast<meta::Asn>(std::stoul(need_value(i))));
    } else if (arg == "--country") {
      options.predicate.match_country(meta::CountryCode(need_value(i)));
    } else if (arg == "--proto") {
      options.predicate.match_proto(
          static_cast<std::uint8_t>(std::stoi(need_value(i))));
    } else if (arg == "--kind") {
      const std::string name = need_value(i);
      const auto kind = core::parse_alert_kind(name);
      if (!kind) {
        std::cerr << "--kind must be new-attack|attack-spike|target-spike\n";
        watch_usage(2);
      }
      options.predicate.match_kind(*kind);
    } else if (arg == "--max") {
      options.max = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else {
      std::cerr << "unknown watch option: " << arg << "\n";
      watch_usage(2);
    }
  }
  return options;
}

int watch_main(int argc, char** argv) {
  const WatchOptions options = parse_watch_options(argc, argv);

  std::vector<core::AttackEvent> events;
  subscribe::DispatcherConfig config;
  config.window = options.scenario.window;
  std::unique_ptr<sim::World> world;
  if (!options.load_events.empty()) {
    events = core::load_events(options.load_events);
    std::cerr << "[dosmeter] loaded " << events.size() << " events from "
              << options.load_events << "\n";
  } else {
    std::cerr << "[dosmeter] building " << config.window.num_days()
              << "-day world (seed " << options.scenario.seed << ")...\n";
    world = sim::build_world(options.scenario);
    events.assign(world->store.events().begin(), world->store.events().end());
    config.pfx2as = &world->population.pfx2as();
    config.geo = &world->population.geo();
  }
  std::sort(events.begin(), events.end(), core::canonical_less);

  subscribe::Dispatcher dispatcher(config);
  const subscribe::SubscriptionId id = dispatcher.subscribe(options.predicate);
  std::cerr << "[dosmeter] watching " << options.predicate.to_string()
            << " over " << events.size() << " events\n";

  // The dispatcher doubles as the fusion's alert sink, so day-level spike
  // alerts dispatch alongside the per-event kNewAttack alerts.
  core::StreamingFusion fusion(config.window, {},
                               [](const core::DaySummary&) {}, &dispatcher);
  int open_day = -1;
  for (const auto& event : events) {
    const auto t = static_cast<UnixSeconds>(event.start);
    const int day = config.window.contains(t) ? config.window.day_of(t) : -1;
    if (day != open_day && open_day != -1) dispatcher.tick();
    open_day = day;
    fusion.ingest(event);
    dispatcher.ingest(event);
  }
  fusion.finish();
  dispatcher.tick();

  const auto result = dispatcher.fetch(id, 0, options.max);
  if (!result) {
    std::cerr << "dosmeter: subscription vanished mid-replay\n";
    return 1;
  }
  TextTable table({"seq", "kind", "day", "victim", "asn", "cc", "proto",
                   "intensity", "folds"});
  for (const auto& n : result->notifications) {
    const core::Alert& alert = n.alert;
    if (alert.has_event) {
      table.add_row(
          {std::to_string(n.seq), core::to_string(alert.kind),
           std::to_string(alert.day), alert.event.target.to_string(),
           alert.asn == meta::kUnknownAsn ? "-"
                                          : "AS" + std::to_string(alert.asn),
           alert.country.is_set() ? alert.country.to_string() : "-",
           std::to_string(alert.event.ip_proto),
           fixed(alert.event.intensity, 1), std::to_string(n.coalesced)});
    } else {
      table.add_row({std::to_string(n.seq), core::to_string(alert.kind),
                     std::to_string(alert.day),
                     fixed(alert.value, 0) + " vs " + fixed(alert.baseline, 1),
                     "-", "-", "-", "-", std::to_string(n.coalesced)});
    }
  }
  std::cout << table;
  std::cout << result->notifications.size() << " notification(s)";
  if (result->pending > 0)
    std::cout << ", " << result->pending << " more queued (raise --max)";
  std::cout << "; " << result->dropped << " dropped; "
            << dispatcher.alerts_dispatched() << " alerts dispatched total\n";
  return 0;
}

// ---------------------------------------------------------------------------
// `dosmeter archive` — seal snapshots to disk, query them back tiered.
// ---------------------------------------------------------------------------

struct ArchiveOptions {
  std::string mode;  // save | load
  std::string file;
  // save:
  sim::ScenarioConfig scenario;
  std::string load_events;
  int threads = 1;
  int segment_days = 7;
  // load:
  int hot_days = 0;
  std::size_t cache_bytes = 64u << 20;
  query::Query query;
  std::optional<CivilDate> from;
  std::optional<CivilDate> to;
  std::string agg = "summary";
  std::size_t k = 10;
  bool explain = false;
  std::string metrics_out;
};

[[noreturn]] void archive_usage(int code) {
  std::cout <<
      "dosmeter archive — compressed on-disk segment archives (src/storage)\n"
      "  dosmeter archive save --file F [dataset] [--threads N]\n"
      "                        [--segment-days N (default 7)]\n"
      "    seals the dataset's snapshot segments into archive F and prints\n"
      "    the compression ratio vs the raw in-memory columns.\n"
      "    dataset: --seed/--days/--domains/--direct/--reflection to\n"
      "    simulate a world, or --load-events F for a binary event dump.\n"
      "  dosmeter archive load --file F [--hot-days N] [--cache-bytes N]\n"
      "                        [filters] [--agg A] [--k N] [--explain]\n"
      "                        [--metrics-out F]\n"
      "    opens F as a tiered snapshot — the trailing --hot-days stay\n"
      "    resident, everything older decodes on demand through an LRU\n"
      "    cache of --cache-bytes (0 = no cache) — and runs one query.\n"
      "    Filters and aggregations are those of `dosmeter query`; results\n"
      "    are byte-identical to querying the archived dataset in memory,\n"
      "    for any --hot-days / --cache-bytes.\n";
  std::exit(code);
}

ArchiveOptions parse_archive_options(int argc, char** argv) {
  ArchiveOptions options;
  if (argc < 3) archive_usage(2);
  options.mode = argv[2];
  if (options.mode == "--help" || options.mode == "-h") archive_usage(0);
  if (options.mode != "save" && options.mode != "load") {
    std::cerr << "archive mode must be save|load\n";
    archive_usage(2);
  }
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      archive_usage(2);
    }
    return argv[++i];
  };
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") archive_usage(0);
    else if (arg == "--file") options.file = need_value(i);
    else if (arg == "--seed") options.scenario.seed = std::stoull(need_value(i));
    else if (arg == "--days") {
      const int days = std::stoi(need_value(i));
      if (days < 2) {
        std::cerr << "--days must be >= 2\n";
        archive_usage(2);
      }
      options.scenario.window.end = civil_from_days(
          days_from_civil(options.scenario.window.start) + days - 1);
    } else if (arg == "--domains") {
      options.scenario.hosting.num_domains = std::stoi(need_value(i));
    } else if (arg == "--direct") {
      options.scenario.attacker.direct_per_day = std::stod(need_value(i));
    } else if (arg == "--reflection") {
      options.scenario.attacker.reflection_per_day = std::stod(need_value(i));
    } else if (arg == "--load-events") {
      options.load_events = need_value(i);
    } else if (arg == "--threads") {
      options.threads = std::stoi(need_value(i));
      if (options.threads < 1) {
        std::cerr << "--threads must be >= 1\n";
        archive_usage(2);
      }
    } else if (arg == "--segment-days") {
      options.segment_days = std::stoi(need_value(i));
      if (options.segment_days < 0) {
        std::cerr << "--segment-days must be >= 0\n";
        archive_usage(2);
      }
    } else if (arg == "--hot-days") {
      options.hot_days = std::stoi(need_value(i));
    } else if (arg == "--cache-bytes") {
      options.cache_bytes = std::stoul(need_value(i));
    } else if (arg == "--from") {
      options.from = parse_civil(need_value(i));
    } else if (arg == "--to") {
      options.to = parse_civil(need_value(i));
    } else if (arg == "--source") {
      const std::string value = need_value(i);
      if (value == "telescope")
        options.query.from_source(core::SourceFilter::kTelescope);
      else if (value == "honeypot")
        options.query.from_source(core::SourceFilter::kHoneypot);
      else if (value == "combined")
        options.query.from_source(core::SourceFilter::kCombined);
      else {
        std::cerr << "--source must be telescope|honeypot|combined\n";
        archive_usage(2);
      }
    } else if (arg == "--prefix") {
      options.query.in_prefix(net::Prefix::parse(need_value(i)));
    } else if (arg == "--asn") {
      options.query.in_asn(static_cast<meta::Asn>(std::stoul(need_value(i))));
    } else if (arg == "--country") {
      options.query.in_country(meta::CountryCode(need_value(i)));
    } else if (arg == "--port") {
      options.query.on_port(static_cast<std::uint16_t>(std::stoi(need_value(i))));
    } else if (arg == "--min-intensity") {
      options.query.at_least(std::stod(need_value(i)));
    } else if (arg == "--agg") {
      options.agg = need_value(i);
    } else if (arg == "--k") {
      options.k = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--metrics-out") {
      options.metrics_out = need_value(i);
    } else {
      std::cerr << "unknown archive option: " << arg << "\n";
      archive_usage(2);
    }
  }
  if (options.file.empty()) {
    std::cerr << "archive " << options.mode << " needs --file\n";
    archive_usage(2);
  }
  return options;
}

int archive_main(int argc, char** argv) {
  ArchiveOptions options = parse_archive_options(argc, argv);
  const meta::PrefixToAsMap empty_pfx2as;
  const meta::GeoDatabase empty_geo;

  if (options.mode == "save") {
    // Same dataset paths as `dosmeter query`, then one write_archive call.
    std::shared_ptr<const query::Snapshot> snapshot;
    std::unique_ptr<sim::World> world;
    if (!options.load_events.empty()) {
      const auto events = core::load_events(options.load_events);
      std::cerr << "[dosmeter] loaded " << events.size() << " events from "
                << options.load_events << "\n";
      snapshot = query::Snapshot::build(
          options.scenario.window, events,
          query::BuildContext{empty_pfx2as, empty_geo, options.threads,
                              options.segment_days});
    } else {
      std::cerr << "[dosmeter] building " << options.scenario.window.num_days()
                << "-day world (seed " << options.scenario.seed << ")...\n";
      world = sim::build_world(options.scenario);
      snapshot = query::Snapshot::from_store(
          world->store,
          query::BuildContext{world->population.pfx2as(),
                              world->population.geo(), options.threads,
                              options.segment_days});
    }
    const std::uint64_t archive_bytes =
        storage::write_archive(options.file, *snapshot);
    const std::uint64_t raw_bytes = snapshot->size() * 42;  // SoA bytes/row
    std::cout << "archived " << snapshot->size() << " events in "
              << snapshot->num_segments() << " segment(s) to " << options.file
              << "\n";
    std::cout << "bytes: " << archive_bytes << " compressed vs " << raw_bytes
              << " raw columns (" << fixed(double(raw_bytes) /
                                               double(std::max<std::uint64_t>(
                                                   archive_bytes, 1)),
                                           2)
              << "x)\n";
    return 0;
  }

  // load: open tiered, run one query through the hot/cold machinery.
  query::BuildContext ctx{empty_pfx2as, empty_geo};
  ctx.hot_days = options.hot_days;
  ctx.cold_cache_bytes = options.cache_bytes;
  const auto snapshot = storage::open_tiered(options.file, ctx, /*version=*/1);
  const StudyWindow window = snapshot->window();
  std::cerr << "[dosmeter] opened " << options.file << ": " << snapshot->size()
            << " events in " << snapshot->num_segments() << " segment(s), "
            << (snapshot->fully_resident() ? "all hot" : "tiered") << "\n";

  if (options.from || options.to) {
    const double begin =
        options.from ? static_cast<double>(unix_from_civil(*options.from))
                     : static_cast<double>(window.start_time());
    const double end =
        options.to ? static_cast<double>(unix_from_civil(*options.to) +
                                         kSecondsPerDay)
                   : static_cast<double>(window.end_time());
    options.query.between(begin, end);
  }
  if (!print_aggregation(*snapshot, window, options.query, options.agg,
                         options.k, options.explain)) {
    std::cerr << "unknown aggregation: " << options.agg << "\n";
    archive_usage(2);
  }
  if (!options.metrics_out.empty()) {
    obs::write_metrics_file(options.metrics_out, obs::MetricsRegistry::global());
    std::cerr << "[dosmeter] wrote metrics to " << options.metrics_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc > 1 && std::string(argv[1]) == "query") return query_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "detect")
    return detect_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "metrics")
    return metrics_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "serve")
    return serve_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "watch")
    return watch_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "archive")
    return archive_main(argc, argv);
  const Options options = parse_options(argc, argv);
  const auto& config = options.scenario;

  std::cerr << "[dosmeter] building " << config.window.num_days()
            << "-day world (seed " << config.seed << ", "
            << config.hosting.num_domains << " domains)...\n";
  const auto world = sim::build_world(config);
  std::cerr << "[dosmeter] " << world->store.size() << " detected events ("
            << world->truth.size() << " ground-truth attacks)\n";

  const auto& pfx2as = world->population.pfx2as();
  const dps::Classifier classifier(world->providers, world->names);
  const auto timelines = dps::all_timelines(world->dns, classifier);
  const core::ImpactAnalysis impact(world->store, world->dns);
  const core::MailImpactAnalysis mail(world->store, world->dns);
  const core::JointAttackAnalysis joint(world->store);
  const auto taxonomy = core::classify_websites(impact, timelines, world->dns);
  const core::MigrationAnalysis migration(impact, timelines);

  if (!options.quiet) {
    print_section(std::cout, "Attack events");
    TextTable table({"source", "#events", "#targets", "#/24s", "#ASNs"});
    for (const auto filter :
         {core::SourceFilter::kTelescope, core::SourceFilter::kHoneypot,
          core::SourceFilter::kCombined}) {
      const auto summary = world->store.summarize(filter, pfx2as);
      table.add_row({core::to_string(filter),
                     human_count(double(summary.events)),
                     human_count(double(summary.unique_targets)),
                     human_count(double(summary.unique_slash24)),
                     human_count(double(summary.unique_asns))});
    }
    std::cout << table;
    std::cout << "joint: " << joint.common_targets() << " common targets, "
              << joint.joint_targets() << " simultaneous\n";

    print_section(std::cout, "Web impact");
    std::cout << "sites ever on attacked IPs: " << impact.attacked_domains()
              << "/" << impact.web_domains() << " ("
              << percent(impact.attacked_domain_fraction(), 1) << "); daily "
              << fixed(impact.affected_daily().daily_mean(), 0) << " ("
              << percent(impact.affected_daily().daily_mean() /
                             double(impact.web_domains()),
                         2)
              << ")\n";
    std::cout << "mail: " << mail.affected_domains() << "/"
              << mail.mail_domains() << " domains' MX hosts attacked\n";

    print_section(std::cout, "DPS taxonomy");
    std::cout << render_taxonomy(taxonomy);
    std::cout << "attack-driven migration cases: " << migration.cases().size()
              << "\n";
  }

  if (!options.save_events.empty()) {
    std::vector<core::AttackEvent> events(world->store.events().begin(),
                                          world->store.events().end());
    core::save_events(options.save_events, events);
    std::cerr << "[dosmeter] wrote " << events.size() << " events to "
              << options.save_events << "\n";
  }

  if (!options.out_dir.empty()) {
    const std::filesystem::path dir(options.out_dir);
    std::filesystem::create_directories(dir);

    // Daily series CSV.
    const auto breakdown =
        world->store.daily_breakdown(core::SourceFilter::kCombined, pfx2as);
    TextTable daily({"date", "attacks", "unique_targets", "targeted_slash16",
                     "targeted_asns", "affected_sites", "affected_mail"});
    for (int d = 0; d < breakdown.attacks.num_days(); ++d) {
      daily.add_row({to_string(world->window.date_of_day(d)),
                     fixed(breakdown.attacks.at(d), 0),
                     fixed(breakdown.unique_targets.at(d), 0),
                     fixed(breakdown.targeted_slash16.at(d), 0),
                     fixed(breakdown.targeted_asns.at(d), 0),
                     fixed(impact.affected_daily().at(d), 0),
                     fixed(mail.affected_daily().at(d), 0)});
    }
    write_file(dir / "daily.csv", daily.to_csv());

    // Provider counts CSV.
    const auto counts = dps::provider_customer_counts(timelines, world->providers);
    TextTable providers({"provider", "customers"});
    for (const auto& provider : world->providers.all())
      providers.add_row({provider.name, std::to_string(counts[provider.id])});
    write_file(dir / "providers.csv", providers.to_csv());

    // Events CSV (every detected event).
    TextTable events({"source", "target", "start_unix", "duration_s",
                      "intensity", "protocol"});
    for (const auto& event : world->store.events()) {
      events.add_row(
          {event.is_telescope() ? "telescope" : "honeypot",
           event.target.to_string(), fixed(event.start, 0),
           fixed(event.duration(), 0), fixed(event.intensity, 3),
           event.is_telescope() ? core::service_name(event.top_port, true)
                                : amppot::to_string(event.reflection)});
    }
    write_file(dir / "events.csv", events.to_csv());

    // Migration cases CSV.
    TextTable cases({"domain", "trigger_day", "migration_day", "delay_days",
                     "site_max_intensity"});
    for (const auto& mc : migration.cases()) {
      cases.add_row({world->dns.entry(mc.domain).name,
                     std::to_string(mc.trigger_attack_day),
                     std::to_string(mc.migration_day),
                     std::to_string(mc.delay_days),
                     fixed(mc.site_max_intensity, 5)});
    }
    write_file(dir / "migrations.csv", cases.to_csv());

    std::cerr << "[dosmeter] wrote daily.csv, providers.csv, events.csv, "
                 "migrations.csv to "
              << dir << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "dosmeter: " << e.what() << "\n";
  return 1;
}
