file(REMOVE_RECURSE
  "libdosm_meta.a"
)
