# Empty dependencies file for dosm_meta.
# This may be replaced when dependencies are built.
