file(REMOVE_RECURSE
  "CMakeFiles/dosm_meta.dir/geo.cpp.o"
  "CMakeFiles/dosm_meta.dir/geo.cpp.o.d"
  "CMakeFiles/dosm_meta.dir/pfx2as.cpp.o"
  "CMakeFiles/dosm_meta.dir/pfx2as.cpp.o.d"
  "libdosm_meta.a"
  "libdosm_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
