
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/names.cpp" "src/dns/CMakeFiles/dosm_dns.dir/names.cpp.o" "gcc" "src/dns/CMakeFiles/dosm_dns.dir/names.cpp.o.d"
  "/root/repo/src/dns/snapshot.cpp" "src/dns/CMakeFiles/dosm_dns.dir/snapshot.cpp.o" "gcc" "src/dns/CMakeFiles/dosm_dns.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dosm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
