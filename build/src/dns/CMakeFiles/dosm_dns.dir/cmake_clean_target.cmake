file(REMOVE_RECURSE
  "libdosm_dns.a"
)
