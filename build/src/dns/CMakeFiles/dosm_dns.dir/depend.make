# Empty dependencies file for dosm_dns.
# This may be replaced when dependencies are built.
