file(REMOVE_RECURSE
  "CMakeFiles/dosm_dns.dir/names.cpp.o"
  "CMakeFiles/dosm_dns.dir/names.cpp.o.d"
  "CMakeFiles/dosm_dns.dir/snapshot.cpp.o"
  "CMakeFiles/dosm_dns.dir/snapshot.cpp.o.d"
  "libdosm_dns.a"
  "libdosm_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
