# Empty compiler generated dependencies file for dosm_core.
# This may be replaced when dependencies are built.
