file(REMOVE_RECURSE
  "CMakeFiles/dosm_core.dir/attribution.cpp.o"
  "CMakeFiles/dosm_core.dir/attribution.cpp.o.d"
  "CMakeFiles/dosm_core.dir/event.cpp.o"
  "CMakeFiles/dosm_core.dir/event.cpp.o.d"
  "CMakeFiles/dosm_core.dir/event_store.cpp.o"
  "CMakeFiles/dosm_core.dir/event_store.cpp.o.d"
  "CMakeFiles/dosm_core.dir/impact.cpp.o"
  "CMakeFiles/dosm_core.dir/impact.cpp.o.d"
  "CMakeFiles/dosm_core.dir/joint.cpp.o"
  "CMakeFiles/dosm_core.dir/joint.cpp.o.d"
  "CMakeFiles/dosm_core.dir/mail_impact.cpp.o"
  "CMakeFiles/dosm_core.dir/mail_impact.cpp.o.d"
  "CMakeFiles/dosm_core.dir/migration_analysis.cpp.o"
  "CMakeFiles/dosm_core.dir/migration_analysis.cpp.o.d"
  "CMakeFiles/dosm_core.dir/ports.cpp.o"
  "CMakeFiles/dosm_core.dir/ports.cpp.o.d"
  "CMakeFiles/dosm_core.dir/serialize.cpp.o"
  "CMakeFiles/dosm_core.dir/serialize.cpp.o.d"
  "CMakeFiles/dosm_core.dir/streaming.cpp.o"
  "CMakeFiles/dosm_core.dir/streaming.cpp.o.d"
  "CMakeFiles/dosm_core.dir/taxonomy.cpp.o"
  "CMakeFiles/dosm_core.dir/taxonomy.cpp.o.d"
  "libdosm_core.a"
  "libdosm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
