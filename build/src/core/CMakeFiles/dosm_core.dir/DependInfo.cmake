
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribution.cpp" "src/core/CMakeFiles/dosm_core.dir/attribution.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/attribution.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/dosm_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/event.cpp.o.d"
  "/root/repo/src/core/event_store.cpp" "src/core/CMakeFiles/dosm_core.dir/event_store.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/event_store.cpp.o.d"
  "/root/repo/src/core/impact.cpp" "src/core/CMakeFiles/dosm_core.dir/impact.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/impact.cpp.o.d"
  "/root/repo/src/core/joint.cpp" "src/core/CMakeFiles/dosm_core.dir/joint.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/joint.cpp.o.d"
  "/root/repo/src/core/mail_impact.cpp" "src/core/CMakeFiles/dosm_core.dir/mail_impact.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/mail_impact.cpp.o.d"
  "/root/repo/src/core/migration_analysis.cpp" "src/core/CMakeFiles/dosm_core.dir/migration_analysis.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/migration_analysis.cpp.o.d"
  "/root/repo/src/core/ports.cpp" "src/core/CMakeFiles/dosm_core.dir/ports.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/ports.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/dosm_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/dosm_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/core/CMakeFiles/dosm_core.dir/taxonomy.cpp.o" "gcc" "src/core/CMakeFiles/dosm_core.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telescope/CMakeFiles/dosm_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/amppot/CMakeFiles/dosm_amppot.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dosm_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dps/CMakeFiles/dosm_dps.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/dosm_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dosm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
