file(REMOVE_RECURSE
  "libdosm_core.a"
)
