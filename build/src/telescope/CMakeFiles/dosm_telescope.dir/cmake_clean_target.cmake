file(REMOVE_RECURSE
  "libdosm_telescope.a"
)
