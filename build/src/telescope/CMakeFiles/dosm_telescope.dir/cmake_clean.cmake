file(REMOVE_RECURSE
  "CMakeFiles/dosm_telescope.dir/backscatter.cpp.o"
  "CMakeFiles/dosm_telescope.dir/backscatter.cpp.o.d"
  "CMakeFiles/dosm_telescope.dir/flow_table.cpp.o"
  "CMakeFiles/dosm_telescope.dir/flow_table.cpp.o.d"
  "CMakeFiles/dosm_telescope.dir/flowtuple.cpp.o"
  "CMakeFiles/dosm_telescope.dir/flowtuple.cpp.o.d"
  "CMakeFiles/dosm_telescope.dir/geo_plugin.cpp.o"
  "CMakeFiles/dosm_telescope.dir/geo_plugin.cpp.o.d"
  "CMakeFiles/dosm_telescope.dir/pipeline.cpp.o"
  "CMakeFiles/dosm_telescope.dir/pipeline.cpp.o.d"
  "CMakeFiles/dosm_telescope.dir/synthesizer.cpp.o"
  "CMakeFiles/dosm_telescope.dir/synthesizer.cpp.o.d"
  "libdosm_telescope.a"
  "libdosm_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
