
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telescope/backscatter.cpp" "src/telescope/CMakeFiles/dosm_telescope.dir/backscatter.cpp.o" "gcc" "src/telescope/CMakeFiles/dosm_telescope.dir/backscatter.cpp.o.d"
  "/root/repo/src/telescope/flow_table.cpp" "src/telescope/CMakeFiles/dosm_telescope.dir/flow_table.cpp.o" "gcc" "src/telescope/CMakeFiles/dosm_telescope.dir/flow_table.cpp.o.d"
  "/root/repo/src/telescope/flowtuple.cpp" "src/telescope/CMakeFiles/dosm_telescope.dir/flowtuple.cpp.o" "gcc" "src/telescope/CMakeFiles/dosm_telescope.dir/flowtuple.cpp.o.d"
  "/root/repo/src/telescope/geo_plugin.cpp" "src/telescope/CMakeFiles/dosm_telescope.dir/geo_plugin.cpp.o" "gcc" "src/telescope/CMakeFiles/dosm_telescope.dir/geo_plugin.cpp.o.d"
  "/root/repo/src/telescope/pipeline.cpp" "src/telescope/CMakeFiles/dosm_telescope.dir/pipeline.cpp.o" "gcc" "src/telescope/CMakeFiles/dosm_telescope.dir/pipeline.cpp.o.d"
  "/root/repo/src/telescope/synthesizer.cpp" "src/telescope/CMakeFiles/dosm_telescope.dir/synthesizer.cpp.o" "gcc" "src/telescope/CMakeFiles/dosm_telescope.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dosm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
