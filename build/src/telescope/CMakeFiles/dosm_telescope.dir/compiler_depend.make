# Empty compiler generated dependencies file for dosm_telescope.
# This may be replaced when dependencies are built.
