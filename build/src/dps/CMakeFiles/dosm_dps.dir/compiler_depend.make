# Empty compiler generated dependencies file for dosm_dps.
# This may be replaced when dependencies are built.
