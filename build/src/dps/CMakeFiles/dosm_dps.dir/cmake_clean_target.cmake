file(REMOVE_RECURSE
  "libdosm_dps.a"
)
