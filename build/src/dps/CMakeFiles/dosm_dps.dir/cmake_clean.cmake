file(REMOVE_RECURSE
  "CMakeFiles/dosm_dps.dir/classifier.cpp.o"
  "CMakeFiles/dosm_dps.dir/classifier.cpp.o.d"
  "CMakeFiles/dosm_dps.dir/migration.cpp.o"
  "CMakeFiles/dosm_dps.dir/migration.cpp.o.d"
  "CMakeFiles/dosm_dps.dir/providers.cpp.o"
  "CMakeFiles/dosm_dps.dir/providers.cpp.o.d"
  "libdosm_dps.a"
  "libdosm_dps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_dps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
