# Empty dependencies file for dosm_sim.
# This may be replaced when dependencies are built.
