file(REMOVE_RECURSE
  "libdosm_sim.a"
)
