file(REMOVE_RECURSE
  "CMakeFiles/dosm_sim.dir/attacker.cpp.o"
  "CMakeFiles/dosm_sim.dir/attacker.cpp.o.d"
  "CMakeFiles/dosm_sim.dir/hosting.cpp.o"
  "CMakeFiles/dosm_sim.dir/hosting.cpp.o.d"
  "CMakeFiles/dosm_sim.dir/migration_model.cpp.o"
  "CMakeFiles/dosm_sim.dir/migration_model.cpp.o.d"
  "CMakeFiles/dosm_sim.dir/observe.cpp.o"
  "CMakeFiles/dosm_sim.dir/observe.cpp.o.d"
  "CMakeFiles/dosm_sim.dir/population.cpp.o"
  "CMakeFiles/dosm_sim.dir/population.cpp.o.d"
  "CMakeFiles/dosm_sim.dir/scenario.cpp.o"
  "CMakeFiles/dosm_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/dosm_sim.dir/validation.cpp.o"
  "CMakeFiles/dosm_sim.dir/validation.cpp.o.d"
  "libdosm_sim.a"
  "libdosm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
