# Empty dependencies file for dosm_net.
# This may be replaced when dependencies are built.
