file(REMOVE_RECURSE
  "CMakeFiles/dosm_net.dir/headers.cpp.o"
  "CMakeFiles/dosm_net.dir/headers.cpp.o.d"
  "CMakeFiles/dosm_net.dir/ipv4.cpp.o"
  "CMakeFiles/dosm_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/dosm_net.dir/pcap.cpp.o"
  "CMakeFiles/dosm_net.dir/pcap.cpp.o.d"
  "libdosm_net.a"
  "libdosm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
