file(REMOVE_RECURSE
  "libdosm_net.a"
)
