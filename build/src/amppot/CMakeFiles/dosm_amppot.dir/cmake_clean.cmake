file(REMOVE_RECURSE
  "CMakeFiles/dosm_amppot.dir/consolidator.cpp.o"
  "CMakeFiles/dosm_amppot.dir/consolidator.cpp.o.d"
  "CMakeFiles/dosm_amppot.dir/fleet.cpp.o"
  "CMakeFiles/dosm_amppot.dir/fleet.cpp.o.d"
  "CMakeFiles/dosm_amppot.dir/honeypot.cpp.o"
  "CMakeFiles/dosm_amppot.dir/honeypot.cpp.o.d"
  "CMakeFiles/dosm_amppot.dir/packet_ingest.cpp.o"
  "CMakeFiles/dosm_amppot.dir/packet_ingest.cpp.o.d"
  "CMakeFiles/dosm_amppot.dir/protocols.cpp.o"
  "CMakeFiles/dosm_amppot.dir/protocols.cpp.o.d"
  "libdosm_amppot.a"
  "libdosm_amppot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_amppot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
