
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amppot/consolidator.cpp" "src/amppot/CMakeFiles/dosm_amppot.dir/consolidator.cpp.o" "gcc" "src/amppot/CMakeFiles/dosm_amppot.dir/consolidator.cpp.o.d"
  "/root/repo/src/amppot/fleet.cpp" "src/amppot/CMakeFiles/dosm_amppot.dir/fleet.cpp.o" "gcc" "src/amppot/CMakeFiles/dosm_amppot.dir/fleet.cpp.o.d"
  "/root/repo/src/amppot/honeypot.cpp" "src/amppot/CMakeFiles/dosm_amppot.dir/honeypot.cpp.o" "gcc" "src/amppot/CMakeFiles/dosm_amppot.dir/honeypot.cpp.o.d"
  "/root/repo/src/amppot/packet_ingest.cpp" "src/amppot/CMakeFiles/dosm_amppot.dir/packet_ingest.cpp.o" "gcc" "src/amppot/CMakeFiles/dosm_amppot.dir/packet_ingest.cpp.o.d"
  "/root/repo/src/amppot/protocols.cpp" "src/amppot/CMakeFiles/dosm_amppot.dir/protocols.cpp.o" "gcc" "src/amppot/CMakeFiles/dosm_amppot.dir/protocols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dosm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dosm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/dosm_meta.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
