# Empty compiler generated dependencies file for dosm_amppot.
# This may be replaced when dependencies are built.
