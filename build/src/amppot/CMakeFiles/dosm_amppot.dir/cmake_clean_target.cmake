file(REMOVE_RECURSE
  "libdosm_amppot.a"
)
