file(REMOVE_RECURSE
  "CMakeFiles/dosm_common.dir/rng.cpp.o"
  "CMakeFiles/dosm_common.dir/rng.cpp.o.d"
  "CMakeFiles/dosm_common.dir/stats.cpp.o"
  "CMakeFiles/dosm_common.dir/stats.cpp.o.d"
  "CMakeFiles/dosm_common.dir/strings.cpp.o"
  "CMakeFiles/dosm_common.dir/strings.cpp.o.d"
  "CMakeFiles/dosm_common.dir/table.cpp.o"
  "CMakeFiles/dosm_common.dir/table.cpp.o.d"
  "CMakeFiles/dosm_common.dir/time.cpp.o"
  "CMakeFiles/dosm_common.dir/time.cpp.o.d"
  "libdosm_common.a"
  "libdosm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
