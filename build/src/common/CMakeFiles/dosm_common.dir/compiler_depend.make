# Empty compiler generated dependencies file for dosm_common.
# This may be replaced when dependencies are built.
