file(REMOVE_RECURSE
  "libdosm_common.a"
)
