file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_timeseries.dir/bench_fig1_timeseries.cpp.o"
  "CMakeFiles/bench_fig1_timeseries.dir/bench_fig1_timeseries.cpp.o.d"
  "bench_fig1_timeseries"
  "bench_fig1_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
