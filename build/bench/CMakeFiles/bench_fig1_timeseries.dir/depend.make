# Empty dependencies file for bench_fig1_timeseries.
# This may be replaced when dependencies are built.
