# Empty compiler generated dependencies file for bench_fig2_duration_cdf.
# This may be replaced when dependencies are built.
