file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_duration_cdf.dir/bench_fig2_duration_cdf.cpp.o"
  "CMakeFiles/bench_fig2_duration_cdf.dir/bench_fig2_duration_cdf.cpp.o.d"
  "bench_fig2_duration_cdf"
  "bench_fig2_duration_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_duration_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
