file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_services.dir/bench_table8_services.cpp.o"
  "CMakeFiles/bench_table8_services.dir/bench_table8_services.cpp.o.d"
  "bench_table8_services"
  "bench_table8_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
