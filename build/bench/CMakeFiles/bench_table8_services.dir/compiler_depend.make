# Empty compiler generated dependencies file for bench_table8_services.
# This may be replaced when dependencies are built.
