# Empty dependencies file for bench_web_port_intensity.
# This may be replaced when dependencies are built.
