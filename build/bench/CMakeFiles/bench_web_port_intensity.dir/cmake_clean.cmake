file(REMOVE_RECURSE
  "CMakeFiles/bench_web_port_intensity.dir/bench_web_port_intensity.cpp.o"
  "CMakeFiles/bench_web_port_intensity.dir/bench_web_port_intensity.cpp.o.d"
  "bench_web_port_intensity"
  "bench_web_port_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_web_port_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
