# Empty dependencies file for bench_fig3_telescope_intensity.
# This may be replaced when dependencies are built.
