file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_attack_events.dir/bench_table1_attack_events.cpp.o"
  "CMakeFiles/bench_table1_attack_events.dir/bench_table1_attack_events.cpp.o.d"
  "bench_table1_attack_events"
  "bench_table1_attack_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_attack_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
