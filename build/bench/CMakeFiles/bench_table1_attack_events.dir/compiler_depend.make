# Empty compiler generated dependencies file for bench_table1_attack_events.
# This may be replaced when dependencies are built.
