file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_countries.dir/bench_table4_countries.cpp.o"
  "CMakeFiles/bench_table4_countries.dir/bench_table4_countries.cpp.o.d"
  "bench_table4_countries"
  "bench_table4_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
