# Empty compiler generated dependencies file for bench_table4_countries.
# This may be replaced when dependencies are built.
