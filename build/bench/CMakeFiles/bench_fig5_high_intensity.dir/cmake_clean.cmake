file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_high_intensity.dir/bench_fig5_high_intensity.cpp.o"
  "CMakeFiles/bench_fig5_high_intensity.dir/bench_fig5_high_intensity.cpp.o.d"
  "bench_fig5_high_intensity"
  "bench_fig5_high_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_high_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
