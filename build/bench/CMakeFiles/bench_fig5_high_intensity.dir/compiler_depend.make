# Empty compiler generated dependencies file for bench_fig5_high_intensity.
# This may be replaced when dependencies are built.
