# Empty compiler generated dependencies file for bench_validation.
# This may be replaced when dependencies are built.
