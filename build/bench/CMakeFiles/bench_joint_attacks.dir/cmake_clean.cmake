file(REMOVE_RECURSE
  "CMakeFiles/bench_joint_attacks.dir/bench_joint_attacks.cpp.o"
  "CMakeFiles/bench_joint_attacks.dir/bench_joint_attacks.cpp.o.d"
  "bench_joint_attacks"
  "bench_joint_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_joint_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
