# Empty compiler generated dependencies file for bench_joint_attacks.
# This may be replaced when dependencies are built.
