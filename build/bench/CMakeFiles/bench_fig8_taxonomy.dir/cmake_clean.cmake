file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_taxonomy.dir/bench_fig8_taxonomy.cpp.o"
  "CMakeFiles/bench_fig8_taxonomy.dir/bench_fig8_taxonomy.cpp.o.d"
  "bench_fig8_taxonomy"
  "bench_fig8_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
