# Empty dependencies file for bench_fig8_taxonomy.
# This may be replaced when dependencies are built.
