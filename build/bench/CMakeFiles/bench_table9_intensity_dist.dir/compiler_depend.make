# Empty compiler generated dependencies file for bench_table9_intensity_dist.
# This may be replaced when dependencies are built.
