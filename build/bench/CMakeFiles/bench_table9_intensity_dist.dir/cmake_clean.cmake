file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_intensity_dist.dir/bench_table9_intensity_dist.cpp.o"
  "CMakeFiles/bench_table9_intensity_dist.dir/bench_table9_intensity_dist.cpp.o.d"
  "bench_table9_intensity_dist"
  "bench_table9_intensity_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_intensity_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
