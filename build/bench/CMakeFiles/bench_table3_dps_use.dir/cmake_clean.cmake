file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dps_use.dir/bench_table3_dps_use.cpp.o"
  "CMakeFiles/bench_table3_dps_use.dir/bench_table3_dps_use.cpp.o.d"
  "bench_table3_dps_use"
  "bench_table3_dps_use.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dps_use.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
