# Empty compiler generated dependencies file for bench_table3_dps_use.
# This may be replaced when dependencies are built.
