# Empty dependencies file for bench_fig10_migration_delay.
# This may be replaced when dependencies are built.
