file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_migration_delay.dir/bench_fig10_migration_delay.cpp.o"
  "CMakeFiles/bench_fig10_migration_delay.dir/bench_fig10_migration_delay.cpp.o.d"
  "bench_fig10_migration_delay"
  "bench_fig10_migration_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_migration_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
