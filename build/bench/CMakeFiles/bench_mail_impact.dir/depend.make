# Empty dependencies file for bench_mail_impact.
# This may be replaced when dependencies are built.
