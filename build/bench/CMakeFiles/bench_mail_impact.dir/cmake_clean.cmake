file(REMOVE_RECURSE
  "CMakeFiles/bench_mail_impact.dir/bench_mail_impact.cpp.o"
  "CMakeFiles/bench_mail_impact.dir/bench_mail_impact.cpp.o.d"
  "bench_mail_impact"
  "bench_mail_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mail_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
