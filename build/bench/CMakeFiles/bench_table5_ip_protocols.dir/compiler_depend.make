# Empty compiler generated dependencies file for bench_table5_ip_protocols.
# This may be replaced when dependencies are built.
