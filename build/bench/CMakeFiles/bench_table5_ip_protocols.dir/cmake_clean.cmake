file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ip_protocols.dir/bench_table5_ip_protocols.cpp.o"
  "CMakeFiles/bench_table5_ip_protocols.dir/bench_table5_ip_protocols.cpp.o.d"
  "bench_table5_ip_protocols"
  "bench_table5_ip_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ip_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
