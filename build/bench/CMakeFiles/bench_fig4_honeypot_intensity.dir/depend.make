# Empty dependencies file for bench_fig4_honeypot_intensity.
# This may be replaced when dependencies are built.
