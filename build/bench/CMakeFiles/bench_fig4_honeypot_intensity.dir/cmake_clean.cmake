file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_honeypot_intensity.dir/bench_fig4_honeypot_intensity.cpp.o"
  "CMakeFiles/bench_fig4_honeypot_intensity.dir/bench_fig4_honeypot_intensity.cpp.o.d"
  "bench_fig4_honeypot_intensity"
  "bench_fig4_honeypot_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_honeypot_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
