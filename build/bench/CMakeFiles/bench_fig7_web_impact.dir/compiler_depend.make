# Empty compiler generated dependencies file for bench_fig7_web_impact.
# This may be replaced when dependencies are built.
