file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_web_impact.dir/bench_fig7_web_impact.cpp.o"
  "CMakeFiles/bench_fig7_web_impact.dir/bench_fig7_web_impact.cpp.o.d"
  "bench_fig7_web_impact"
  "bench_fig7_web_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_web_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
