file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_long_attack_migration.dir/bench_fig11_long_attack_migration.cpp.o"
  "CMakeFiles/bench_fig11_long_attack_migration.dir/bench_fig11_long_attack_migration.cpp.o.d"
  "bench_fig11_long_attack_migration"
  "bench_fig11_long_attack_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_long_attack_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
