# Empty compiler generated dependencies file for bench_fig11_long_attack_migration.
# This may be replaced when dependencies are built.
