# Empty dependencies file for bench_table6_reflection_protocols.
# This may be replaced when dependencies are built.
