file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_reflection_protocols.dir/bench_table6_reflection_protocols.cpp.o"
  "CMakeFiles/bench_table6_reflection_protocols.dir/bench_table6_reflection_protocols.cpp.o.d"
  "bench_table6_reflection_protocols"
  "bench_table6_reflection_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_reflection_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
