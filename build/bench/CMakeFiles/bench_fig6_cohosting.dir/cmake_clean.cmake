file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cohosting.dir/bench_fig6_cohosting.cpp.o"
  "CMakeFiles/bench_fig6_cohosting.dir/bench_fig6_cohosting.cpp.o.d"
  "bench_fig6_cohosting"
  "bench_fig6_cohosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cohosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
