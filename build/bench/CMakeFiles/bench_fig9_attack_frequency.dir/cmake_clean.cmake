file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_attack_frequency.dir/bench_fig9_attack_frequency.cpp.o"
  "CMakeFiles/bench_fig9_attack_frequency.dir/bench_fig9_attack_frequency.cpp.o.d"
  "bench_fig9_attack_frequency"
  "bench_fig9_attack_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_attack_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
