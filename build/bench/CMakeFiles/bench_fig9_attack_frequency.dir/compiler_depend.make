# Empty compiler generated dependencies file for bench_fig9_attack_frequency.
# This may be replaced when dependencies are built.
