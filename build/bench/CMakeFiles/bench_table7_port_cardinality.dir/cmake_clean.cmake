file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_port_cardinality.dir/bench_table7_port_cardinality.cpp.o"
  "CMakeFiles/bench_table7_port_cardinality.dir/bench_table7_port_cardinality.cpp.o.d"
  "bench_table7_port_cardinality"
  "bench_table7_port_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_port_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
