# Empty dependencies file for bench_table7_port_cardinality.
# This may be replaced when dependencies are built.
