file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dns_dataset.dir/bench_table2_dns_dataset.cpp.o"
  "CMakeFiles/bench_table2_dns_dataset.dir/bench_table2_dns_dataset.cpp.o.d"
  "bench_table2_dns_dataset"
  "bench_table2_dns_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dns_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
