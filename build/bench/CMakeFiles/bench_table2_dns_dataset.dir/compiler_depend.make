# Empty compiler generated dependencies file for bench_table2_dns_dataset.
# This may be replaced when dependencies are built.
