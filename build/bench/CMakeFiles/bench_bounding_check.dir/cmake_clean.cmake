file(REMOVE_RECURSE
  "CMakeFiles/bench_bounding_check.dir/bench_bounding_check.cpp.o"
  "CMakeFiles/bench_bounding_check.dir/bench_bounding_check.cpp.o.d"
  "bench_bounding_check"
  "bench_bounding_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounding_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
