# Empty compiler generated dependencies file for bench_bounding_check.
# This may be replaced when dependencies are built.
