# Empty dependencies file for hoster_under_attack.
# This may be replaced when dependencies are built.
