file(REMOVE_RECURSE
  "CMakeFiles/hoster_under_attack.dir/hoster_under_attack.cpp.o"
  "CMakeFiles/hoster_under_attack.dir/hoster_under_attack.cpp.o.d"
  "hoster_under_attack"
  "hoster_under_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoster_under_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
