# Empty compiler generated dependencies file for dps_migration_study.
# This may be replaced when dependencies are built.
