file(REMOVE_RECURSE
  "CMakeFiles/dps_migration_study.dir/dps_migration_study.cpp.o"
  "CMakeFiles/dps_migration_study.dir/dps_migration_study.cpp.o.d"
  "dps_migration_study"
  "dps_migration_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_migration_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
