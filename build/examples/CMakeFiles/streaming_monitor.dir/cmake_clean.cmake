file(REMOVE_RECURSE
  "CMakeFiles/streaming_monitor.dir/streaming_monitor.cpp.o"
  "CMakeFiles/streaming_monitor.dir/streaming_monitor.cpp.o.d"
  "streaming_monitor"
  "streaming_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
