# Empty compiler generated dependencies file for streaming_monitor.
# This may be replaced when dependencies are built.
