# Empty dependencies file for telescope_pipeline.
# This may be replaced when dependencies are built.
