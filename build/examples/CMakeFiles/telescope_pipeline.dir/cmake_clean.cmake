file(REMOVE_RECURSE
  "CMakeFiles/telescope_pipeline.dir/telescope_pipeline.cpp.o"
  "CMakeFiles/telescope_pipeline.dir/telescope_pipeline.cpp.o.d"
  "telescope_pipeline"
  "telescope_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
