# Empty dependencies file for strings_table_test.
# This may be replaced when dependencies are built.
