file(REMOVE_RECURSE
  "CMakeFiles/strings_table_test.dir/strings_table_test.cpp.o"
  "CMakeFiles/strings_table_test.dir/strings_table_test.cpp.o.d"
  "strings_table_test"
  "strings_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
