# Empty dependencies file for mail_impact_test.
# This may be replaced when dependencies are built.
