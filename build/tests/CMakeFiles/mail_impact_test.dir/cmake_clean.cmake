file(REMOVE_RECURSE
  "CMakeFiles/mail_impact_test.dir/mail_impact_test.cpp.o"
  "CMakeFiles/mail_impact_test.dir/mail_impact_test.cpp.o.d"
  "mail_impact_test"
  "mail_impact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_impact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
