file(REMOVE_RECURSE
  "CMakeFiles/attacker_test.dir/attacker_test.cpp.o"
  "CMakeFiles/attacker_test.dir/attacker_test.cpp.o.d"
  "attacker_test"
  "attacker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attacker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
