# Empty dependencies file for attacker_test.
# This may be replaced when dependencies are built.
