file(REMOVE_RECURSE
  "CMakeFiles/backscatter_test.dir/backscatter_test.cpp.o"
  "CMakeFiles/backscatter_test.dir/backscatter_test.cpp.o.d"
  "backscatter_test"
  "backscatter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backscatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
