# Empty dependencies file for backscatter_test.
# This may be replaced when dependencies are built.
