file(REMOVE_RECURSE
  "CMakeFiles/ports_test.dir/ports_test.cpp.o"
  "CMakeFiles/ports_test.dir/ports_test.cpp.o.d"
  "ports_test"
  "ports_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
