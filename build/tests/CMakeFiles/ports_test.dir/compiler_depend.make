# Empty compiler generated dependencies file for ports_test.
# This may be replaced when dependencies are built.
