# Empty dependencies file for dns_test.
# This may be replaced when dependencies are built.
