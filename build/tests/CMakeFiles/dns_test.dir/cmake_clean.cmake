file(REMOVE_RECURSE
  "CMakeFiles/dns_test.dir/dns_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_test.cpp.o.d"
  "dns_test"
  "dns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
