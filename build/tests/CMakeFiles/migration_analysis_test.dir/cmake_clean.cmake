file(REMOVE_RECURSE
  "CMakeFiles/migration_analysis_test.dir/migration_analysis_test.cpp.o"
  "CMakeFiles/migration_analysis_test.dir/migration_analysis_test.cpp.o.d"
  "migration_analysis_test"
  "migration_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
