# Empty dependencies file for migration_analysis_test.
# This may be replaced when dependencies are built.
