file(REMOVE_RECURSE
  "CMakeFiles/headers_test.dir/headers_test.cpp.o"
  "CMakeFiles/headers_test.dir/headers_test.cpp.o.d"
  "headers_test"
  "headers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
