# Empty dependencies file for headers_test.
# This may be replaced when dependencies are built.
