file(REMOVE_RECURSE
  "CMakeFiles/geo_plugin_test.dir/geo_plugin_test.cpp.o"
  "CMakeFiles/geo_plugin_test.dir/geo_plugin_test.cpp.o.d"
  "geo_plugin_test"
  "geo_plugin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_plugin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
