file(REMOVE_RECURSE
  "CMakeFiles/dps_test.dir/dps_test.cpp.o"
  "CMakeFiles/dps_test.dir/dps_test.cpp.o.d"
  "dps_test"
  "dps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
