# Empty dependencies file for dps_test.
# This may be replaced when dependencies are built.
