file(REMOVE_RECURSE
  "CMakeFiles/attribution_test.dir/attribution_test.cpp.o"
  "CMakeFiles/attribution_test.dir/attribution_test.cpp.o.d"
  "attribution_test"
  "attribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
