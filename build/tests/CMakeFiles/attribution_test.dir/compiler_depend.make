# Empty compiler generated dependencies file for attribution_test.
# This may be replaced when dependencies are built.
