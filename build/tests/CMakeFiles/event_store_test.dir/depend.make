# Empty dependencies file for event_store_test.
# This may be replaced when dependencies are built.
