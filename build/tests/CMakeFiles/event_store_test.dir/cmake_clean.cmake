file(REMOVE_RECURSE
  "CMakeFiles/event_store_test.dir/event_store_test.cpp.o"
  "CMakeFiles/event_store_test.dir/event_store_test.cpp.o.d"
  "event_store_test"
  "event_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
