# Empty dependencies file for validation_test.
# This may be replaced when dependencies are built.
