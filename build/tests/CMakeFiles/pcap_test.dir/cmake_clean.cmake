file(REMOVE_RECURSE
  "CMakeFiles/pcap_test.dir/pcap_test.cpp.o"
  "CMakeFiles/pcap_test.dir/pcap_test.cpp.o.d"
  "pcap_test"
  "pcap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
