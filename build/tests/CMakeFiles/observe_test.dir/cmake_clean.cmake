file(REMOVE_RECURSE
  "CMakeFiles/observe_test.dir/observe_test.cpp.o"
  "CMakeFiles/observe_test.dir/observe_test.cpp.o.d"
  "observe_test"
  "observe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
