# Empty dependencies file for observe_test.
# This may be replaced when dependencies are built.
