file(REMOVE_RECURSE
  "CMakeFiles/migration_model_test.dir/migration_model_test.cpp.o"
  "CMakeFiles/migration_model_test.dir/migration_model_test.cpp.o.d"
  "migration_model_test"
  "migration_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
