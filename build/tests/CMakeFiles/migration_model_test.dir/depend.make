# Empty dependencies file for migration_model_test.
# This may be replaced when dependencies are built.
