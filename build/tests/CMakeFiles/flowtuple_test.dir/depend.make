# Empty dependencies file for flowtuple_test.
# This may be replaced when dependencies are built.
