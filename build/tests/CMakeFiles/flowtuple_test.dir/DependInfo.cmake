
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flowtuple_test.cpp" "tests/CMakeFiles/flowtuple_test.dir/flowtuple_test.cpp.o" "gcc" "tests/CMakeFiles/flowtuple_test.dir/flowtuple_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dosm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dosm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/dosm_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/amppot/CMakeFiles/dosm_amppot.dir/DependInfo.cmake"
  "/root/repo/build/src/dps/CMakeFiles/dosm_dps.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dosm_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/dosm_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dosm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
