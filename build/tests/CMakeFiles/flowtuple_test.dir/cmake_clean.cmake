file(REMOVE_RECURSE
  "CMakeFiles/flowtuple_test.dir/flowtuple_test.cpp.o"
  "CMakeFiles/flowtuple_test.dir/flowtuple_test.cpp.o.d"
  "flowtuple_test"
  "flowtuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowtuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
