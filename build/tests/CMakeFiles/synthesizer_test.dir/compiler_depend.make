# Empty compiler generated dependencies file for synthesizer_test.
# This may be replaced when dependencies are built.
