file(REMOVE_RECURSE
  "CMakeFiles/synthesizer_test.dir/synthesizer_test.cpp.o"
  "CMakeFiles/synthesizer_test.dir/synthesizer_test.cpp.o.d"
  "synthesizer_test"
  "synthesizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
