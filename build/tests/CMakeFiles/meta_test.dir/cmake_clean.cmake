file(REMOVE_RECURSE
  "CMakeFiles/meta_test.dir/meta_test.cpp.o"
  "CMakeFiles/meta_test.dir/meta_test.cpp.o.d"
  "meta_test"
  "meta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
