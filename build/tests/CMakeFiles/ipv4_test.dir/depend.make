# Empty dependencies file for ipv4_test.
# This may be replaced when dependencies are built.
