# Empty compiler generated dependencies file for amppot_test.
# This may be replaced when dependencies are built.
