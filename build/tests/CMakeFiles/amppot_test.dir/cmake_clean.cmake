file(REMOVE_RECURSE
  "CMakeFiles/amppot_test.dir/amppot_test.cpp.o"
  "CMakeFiles/amppot_test.dir/amppot_test.cpp.o.d"
  "amppot_test"
  "amppot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amppot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
