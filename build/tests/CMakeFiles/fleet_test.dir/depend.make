# Empty dependencies file for fleet_test.
# This may be replaced when dependencies are built.
