file(REMOVE_RECURSE
  "CMakeFiles/fleet_test.dir/fleet_test.cpp.o"
  "CMakeFiles/fleet_test.dir/fleet_test.cpp.o.d"
  "fleet_test"
  "fleet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
