# Empty dependencies file for population_test.
# This may be replaced when dependencies are built.
