# Empty dependencies file for hosting_test.
# This may be replaced when dependencies are built.
