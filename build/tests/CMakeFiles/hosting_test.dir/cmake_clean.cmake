file(REMOVE_RECURSE
  "CMakeFiles/hosting_test.dir/hosting_test.cpp.o"
  "CMakeFiles/hosting_test.dir/hosting_test.cpp.o.d"
  "hosting_test"
  "hosting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
