file(REMOVE_RECURSE
  "CMakeFiles/flow_table_test.dir/flow_table_test.cpp.o"
  "CMakeFiles/flow_table_test.dir/flow_table_test.cpp.o.d"
  "flow_table_test"
  "flow_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
