# Empty compiler generated dependencies file for impact_test.
# This may be replaced when dependencies are built.
