file(REMOVE_RECURSE
  "CMakeFiles/impact_test.dir/impact_test.cpp.o"
  "CMakeFiles/impact_test.dir/impact_test.cpp.o.d"
  "impact_test"
  "impact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
