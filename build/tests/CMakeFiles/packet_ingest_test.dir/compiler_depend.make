# Empty compiler generated dependencies file for packet_ingest_test.
# This may be replaced when dependencies are built.
