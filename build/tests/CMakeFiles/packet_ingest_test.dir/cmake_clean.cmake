file(REMOVE_RECURSE
  "CMakeFiles/packet_ingest_test.dir/packet_ingest_test.cpp.o"
  "CMakeFiles/packet_ingest_test.dir/packet_ingest_test.cpp.o.d"
  "packet_ingest_test"
  "packet_ingest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_ingest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
