file(REMOVE_RECURSE
  "CMakeFiles/robustness_test.dir/robustness_test.cpp.o"
  "CMakeFiles/robustness_test.dir/robustness_test.cpp.o.d"
  "robustness_test"
  "robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
