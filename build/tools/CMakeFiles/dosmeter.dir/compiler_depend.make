# Empty compiler generated dependencies file for dosmeter.
# This may be replaced when dependencies are built.
