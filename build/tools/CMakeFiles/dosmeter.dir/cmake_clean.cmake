file(REMOVE_RECURSE
  "CMakeFiles/dosmeter.dir/dosmeter_cli.cpp.o"
  "CMakeFiles/dosmeter.dir/dosmeter_cli.cpp.o.d"
  "dosmeter"
  "dosmeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosmeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
