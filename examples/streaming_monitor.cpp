// Near-realtime monitoring demo (§9): replay a simulated year of fused
// detector output through the StreamingFusion engine and print the day
// summaries worth looking at plus every anomaly alert — the situational-
// awareness loop the paper proposes operating continuously.
//
//   $ ./streaming_monitor [seed]
#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "core/alert.h"
#include "core/streaming.h"
#include "sim/scenario.h"

namespace {

// Alert consumer for the demo: prints each spike against its baseline. The
// same sink interface feeds the subscription dispatcher in production.
class PrintingAlertSink final : public dosm::core::AlertSink {
 public:
  explicit PrintingAlertSink(const dosm::StudyWindow& window)
      : window_(window) {}

  void on_alert(const dosm::core::Alert& alert) override {
    using dosm::fixed;
    std::cout << to_string(window_.date_of_day(alert.day)) << "  *** "
              << to_string(alert.kind) << ": " << fixed(alert.value, 0)
              << " vs trailing baseline " << fixed(alert.baseline, 1) << " (x"
              << fixed(alert.value / alert.baseline, 1) << ")\n";
  }

 private:
  const dosm::StudyWindow& window_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dosm;

  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  config.window.end = {2016, 2, 24};  // 361 days
  config.attacker.num_campaigns = 5;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  const auto world = sim::build_world(config);
  std::cout << "Replaying " << world->store.size()
            << " fused events through the streaming monitor...\n\n";

  core::StreamingFusion::Config stream_config;
  stream_config.spike_factor = 1.6;
  stream_config.baseline_days = 21;

  double baseline_attacks = 0.0;
  int summaries = 0;
  PrintingAlertSink alert_sink(world->window);
  core::StreamingFusion fusion(
      world->window, stream_config,
      [&](const core::DaySummary& s) {
        baseline_attacks += static_cast<double>(s.attacks);
        ++summaries;
        if (s.co_targeted >= 3) {
          std::cout << to_string(world->window.date_of_day(s.day))
                    << "  co-targeted day: " << s.attacks << " attacks, "
                    << s.co_targeted
                    << " target(s) hit by both detectors simultaneously\n";
        }
      },
      &alert_sink);

  for (const auto& event : world->store.events()) fusion.ingest(event);
  fusion.finish();

  std::cout << "\nDays summarized: " << fusion.days_emitted()
            << ", mean attacks/day: "
            << fixed(baseline_attacks / std::max(summaries, 1), 1)
            << ", alerts fired: " << fusion.alerts_fired() << "\n";
  std::cout << "(The alert days line up with the simulated mega-hoster "
               "campaign days.)\n";
  return 0;
}
