// The §5 case study: what happens to the Web when a mega-hoster is hit.
//
// Builds a world, finds the day with the largest number of affected Web
// sites, and drills into it: which IPs were hit, how many sites each
// hosted, which hoster they belong to, and whether the attacks were joint.
//
//   $ ./hoster_under_attack [seed]
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/strings.h"
#include "core/attribution.h"
#include "core/impact.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace dosm;

  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  config.window.end = {2015, 8, 27};  // 180 days: room for campaigns
  config.attacker.num_campaigns = 4;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  const auto world = sim::build_world(config);

  const core::ImpactAnalysis impact(world->store, world->dns);
  std::cout << "Web sites ever on attacked IPs: " << impact.attacked_domains()
            << " of " << impact.web_domains() << " ("
            << percent(impact.attacked_domain_fraction(), 1) << ")\n";
  std::cout << "Average affected per day: "
            << fixed(impact.affected_daily().daily_mean(), 0) << " sites\n";

  const auto peaks = impact.top_peaks(3);
  std::cout << "\nTop peak days:\n";
  for (const auto& [day, count] : peaks) {
    std::cout << "  " << to_string(world->window.date_of_day(day)) << "  "
              << count << " sites\n";
  }

  // Drill into the biggest peak with the detection-side attribution the
  // paper uses: routing (prefix-to-AS) plus shared name servers — never the
  // simulator's ground truth.
  const int peak_day = peaks.front().first;
  const auto parties = core::attribute_peak(
      world->store, world->dns, world->names, peak_day,
      world->population.pfx2as(), world->population.as_registry());
  std::cout << "\nPeak day " << to_string(world->window.date_of_day(peak_day))
            << " attribution (top parties by affected sites):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(6, parties.size()); ++i) {
    const auto& party = parties[i];
    std::cout << "  " << party.name << "  " << party.affected_sites
              << " sites across " << party.attacked_ips << " attacked IP(s)";
    if (!party.common_ns.empty()) std::cout << "  [NS: " << party.common_ns << "]";
    if (party.joint_attacked) std::cout << "  [joint attack]";
    std::cout << "\n";
  }
  return 0;
}
