// Query-engine demo: replay the fused event stream through the snapshot
// publisher and render a periodic "operations dashboard" from the latest
// published snapshot — the serving pattern behind `dosmeter query`.
//
// The publisher swaps a fresh immutable snapshot into the QueryEngine at
// every day boundary; the dashboard only ever reads whatever snapshot is
// current, exactly like a concurrent reader would (see
// tests/query_concurrency_test.cpp for the multi-threaded version).
//
//   $ ./query_dashboard [seed]
#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace dosm;

  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  config.window.end = {2015, 8, 27};  // 180 days
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  const auto world = sim::build_world(config);
  std::cout << "Replaying " << world->store.size()
            << " fused events through the snapshot publisher...\n";

  query::QueryEngine engine;
  query::SnapshotPublisher publisher(
      engine, world->window,
      query::BuildContext{world->population.pfx2as(),
                          world->population.geo()});

  const int report_every = 30;  // days
  int next_report = report_every;
  const auto dashboard = [&] {
    const auto snap = engine.snapshot();
    if (!snap) return;
    const double now =
        static_cast<double>(world->window.day_start(next_report));
    const double week = 7.0 * static_cast<double>(kSecondsPerDay);
    query::Query last_week = query::Query{}.between(now - week, now);

    std::cout << "\n== day " << next_report << " (snapshot v"
              << snap->version() << ", " << snap->size()
              << " events indexed) ==\n";
    std::cout << "last 7 days: " << snap->count(last_week) << " attacks on "
              << snap->unique_targets(last_week) << " targets\n";
    TextTable countries({"country", "targets", "share"});
    for (const auto& row : snap->top_countries(last_week, 3))
      countries.add_row({row.country.to_string(), std::to_string(row.targets),
                         percent(row.share, 1)});
    std::cout << countries;
    TextTable victims({"victim", "events this week"});
    for (const auto& row : snap->top_targets(last_week, 3))
      victims.add_row({row.target.to_string(), std::to_string(row.events)});
    std::cout << victims;
  };

  for (const auto& event : world->store.events()) {
    publisher.ingest(event);
    const auto snap = engine.snapshot();
    if (snap && world->window.day_of(static_cast<UnixSeconds>(event.start)) >=
                    next_report) {
      dashboard();
      next_report += report_every;
    }
  }
  publisher.finish();

  const auto final_snap = engine.snapshot();
  std::cout << "\nFinal snapshot v" << final_snap->version() << ": "
            << final_snap->size() << " events, "
            << publisher.snapshots_published() << " snapshots published, "
            << final_snap->unique_targets(query::Query{})
            << " unique targets overall\n";
  return 0;
}
