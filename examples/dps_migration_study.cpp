// The §6 case study: do attacks push Web sites to DDoS Protection Services?
//
// Builds a world, re-detects protection timelines from DNS alone (never
// from simulator ground truth), classifies every site into the Figure-8
// taxonomy, and prints migration-delay CDFs by attack intensity.
//
//   $ ./dps_migration_study [seed]
#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "core/migration_analysis.h"
#include "core/taxonomy.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace dosm;

  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  config.window.end = {2015, 11, 25};  // 270 days
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  const auto world = sim::build_world(config);

  // Detection side: classify protection from DNS fingerprints only.
  const dps::Classifier classifier(world->providers, world->names);
  const auto timelines = dps::all_timelines(world->dns, classifier);

  std::cout << "Per-provider customers (detected from DNS):\n";
  const auto counts = dps::provider_customer_counts(timelines, world->providers);
  for (const auto& provider : world->providers.all())
    std::cout << "  " << provider.name << ": " << counts[provider.id] << "\n";

  const core::ImpactAnalysis impact(world->store, world->dns);
  const auto taxonomy = core::classify_websites(impact, timelines, world->dns);
  std::cout << "\n" << core::render_taxonomy(taxonomy);

  const core::MigrationAnalysis migration(impact, timelines);
  std::cout << "Attack-driven migrations detected: " << migration.cases().size()
            << " (ground truth applied: " << world->migrations.size() << ")\n";

  // The paper manually sampled Web sites from the smallest and largest
  // hosting groups for each customer class; the census automates that.
  const auto census = core::census_attacked_sites(impact, timelines, world->dns);
  std::cout << "\nAttacked-site census (hosting group x customer class):\n";
  for (const std::size_t bin : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (const auto customer_class :
         {core::CustomerClass::kPreexisting, core::CustomerClass::kMigrating,
          core::CustomerClass::kNonMigrating}) {
      const auto& cell = census.cell(bin, customer_class);
      if (cell.count == 0) continue;
      std::cout << "  bin " << bin << " / " << to_string(customer_class) << ": "
                << cell.count << " sites";
      if (!cell.examples.empty()) {
        std::cout << " (e.g.";
        for (const auto& name : cell.examples) std::cout << " " << name;
        std::cout << ")";
      }
      std::cout << "\n";
    }
  }

  std::cout << "\nDays-to-migration CDF by attack intensity class:\n";
  std::cout << "  class      <=1d    <=3d    <=6d\n";
  for (const auto& [label, fraction] :
       std::vector<std::pair<const char*, double>>{
           {"all     ", 1.0}, {"top 5%  ", 0.05}, {"top 1%  ", 0.01}}) {
    const auto delays = migration.delays_for_intensity_class(fraction);
    if (delays.empty()) {
      std::cout << "  " << label << " (no cases)\n";
      continue;
    }
    std::cout << "  " << label;
    for (const int d : {1, 3, 6})
      std::cout << "  " << percent(core::MigrationAnalysis::fraction_within(delays, d), 1);
    std::cout << "   (" << delays.size() << " sites)\n";
  }
  return 0;
}
