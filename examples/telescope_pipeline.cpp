// Packet-level telescope pipeline demo — the Corsaro-plugin use case.
//
// Synthesizes one hour of /8 darknet traffic (three ground-truth attacks
// plus scan/misconfiguration noise), writes it through our pcap writer,
// reads it back through the batched ingest front end (src/ingest), and
// replays it through the RS-DoS plugin pipeline, printing the inferred
// attack events.
//
//   $ ./telescope_pipeline
#include <iostream>
#include <sstream>

#include "common/strings.h"
#include "common/time.h"
#include "net/pcap.h"
#include "telescope/flowtuple.h"
#include "telescope/geo_plugin.h"
#include "telescope/pipeline.h"
#include "telescope/synthesizer.h"

int main() {
  using namespace dosm;
  const double t0 = static_cast<double>(StudyWindow{}.start_time());

  // Ground truth: a SYN flood on a Web server, a UDP flood on a game
  // server, and a ping flood — plus one attack too weak to pass the Moore
  // thresholds.
  std::vector<telescope::SpoofedAttackSpec> attacks{
      {.victim = net::Ipv4Addr(93, 184, 216, 34),
       .start = t0 + 300,
       .duration_s = 1200,
       .victim_pps = 60000,
       .ip_proto = 6,
       .ports = {80}},
      {.victim = net::Ipv4Addr(162, 254, 197, 36),
       .start = t0 + 900,
       .duration_s = 600,
       .victim_pps = 40000,
       .ip_proto = 17,
       .ports = {27015}},
      {.victim = net::Ipv4Addr(198, 41, 209, 124),
       .start = t0 + 1800,
       .duration_s = 900,
       .victim_pps = 30000,
       .ip_proto = 1,
       .ports = {}},
      {.victim = net::Ipv4Addr(10, 11, 12, 13),
       .start = t0 + 600,
       .duration_s = 45,  // under the 60 s threshold: filtered out
       .victim_pps = 90,  // ~16 backscatter packets: under the 25 threshold
       .ip_proto = 6,
       .ports = {443}},
  };

  telescope::TelescopeSynthesizer synthesizer(/*seed=*/7);
  const auto packets = synthesizer.synthesize(
      attacks, t0, t0 + 3600,
      {.scan_pps = 40.0, .misconfig_pps = 15.0, .benign_icmp_pps = 5.0});
  std::cout << "Synthesized " << packets.size()
            << " darknet packets over one hour\n";

  // Round-trip through the pcap format, as a real deployment would.
  std::stringstream pcap(std::ios::in | std::ios::out | std::ios::binary);
  net::PcapWriter writer(pcap);
  for (const auto& rec : packets) writer.write_packet(rec);
  std::cout << "Wrote " << writer.frames_written() << " pcap frames ("
            << pcap.str().size() << " bytes)\n";

  // The full Corsaro-style chain: traffic stats, flowtuple aggregation,
  // geo/ASN tagging, and the RS-DoS detector, side by side.
  meta::GeoDatabase geo;
  geo.add(net::Prefix::parse("93.0.0.0/8"), meta::CountryCode("US"));
  geo.add(net::Prefix::parse("162.0.0.0/8"), meta::CountryCode("DE"));
  geo.add(net::Prefix::parse("198.0.0.0/8"), meta::CountryCode("FR"));
  meta::PrefixToAsMap pfx2as;
  pfx2as.announce(net::Prefix::parse("93.184.0.0/16"), 15133);
  pfx2as.announce(net::Prefix::parse("162.254.0.0/16"), 32590);
  pfx2as.announce(net::Prefix::parse("198.41.0.0/16"), 13335);

  telescope::Pipeline pipeline;
  auto& stats = pipeline.emplace_plugin<telescope::TrafficStatsPlugin>();
  auto& flowtuple = pipeline.emplace_plugin<telescope::FlowTuplePlugin>();
  auto& geotag = pipeline.emplace_plugin<telescope::GeoTaggingPlugin>(geo, pfx2as);
  auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
  // The batched front end (capture thread -> SPSC ring -> decode); plugins
  // see the identical packet sequence the sequential PcapReader would give.
  pipeline.replay(pcap);
  pipeline.finish();

  std::cout << "\nPipeline: " << stats.total_packets() << " packets, "
            << stats.backscatter_packets() << " backscatter ("
            << percent(static_cast<double>(stats.backscatter_packets()) /
                           static_cast<double>(stats.total_packets()),
                       1)
            << ")\n";
  std::cout << "FlowTuple: " << flowtuple.intervals().size()
            << " one-minute intervals; tuple cardinality ~= packet count "
               "(the random-spoofing signature)\n";
  std::cout << "Geo tagging: ";
  for (const auto& [country, count] : geotag.country_ranking())
    std::cout << country.to_string() << "=" << count << " ";
  std::cout << "\n";
  std::cout << "Inferred " << rsdos.events().size()
            << " randomly-spoofed attack events:\n";
  for (const auto& event : rsdos.events()) {
    std::cout << "  victim " << event.victim.to_string() << "  proto "
              << int(event.attack_proto) << "  port " << event.top_port
              << "  packets " << event.packets << "  duration "
              << format_duration(event.duration()) << "  max "
              << fixed(event.max_pps, 2) << " pps (x256 = "
              << fixed(event.max_pps * 256.0, 0) << " pps at victim)\n";
  }
  return 0;
}
