// Quickstart: build a small simulated world, run both detection pipelines,
// fuse the events, and print the headline numbers of the paper's analysis.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "core/joint.h"
#include "core/ports.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace dosm;

  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Building a " << config.window.num_days()
            << "-day world (seed " << config.seed << ")...\n";
  const auto world = sim::build_world(config);

  std::cout << "\nGround truth: " << world->truth.size() << " attacks, "
            << world->dns.num_domains() << " Web domains, "
            << world->hosting.hosters().size() << " hosters\n";

  // Table-1 style summary of what the detectors saw.
  const auto& pfx2as = world->population.pfx2as();
  for (const auto filter :
       {core::SourceFilter::kTelescope, core::SourceFilter::kHoneypot,
        core::SourceFilter::kCombined}) {
    const auto summary = world->store.summarize(filter, pfx2as);
    std::cout << "  " << core::to_string(filter) << ": " << summary.events
              << " events, " << summary.unique_targets << " targets, "
              << summary.unique_slash24 << " /24s, " << summary.unique_slash16
              << " /16s, " << summary.unique_asns << " ASNs\n";
  }

  // Daily view of the busiest day.
  const auto breakdown =
      world->store.daily_breakdown(core::SourceFilter::kCombined, pfx2as);
  const int busiest = breakdown.attacks.argmax();
  std::cout << "\nBusiest day: " << to_string(world->window.date_of_day(busiest))
            << " with " << breakdown.attacks.at(busiest) << " attacks on "
            << breakdown.unique_targets.at(busiest) << " targets\n";

  // Joint attacks.
  const core::JointAttackAnalysis joint(world->store);
  std::cout << "Targets in both datasets: " << joint.common_targets()
            << "; hit simultaneously: " << joint.joint_targets() << "\n";

  // Protocol mixes.
  std::cout << "\nRandomly-spoofed attack protocols:";
  for (const auto& row : core::ip_protocol_distribution(world->store))
    std::cout << "  " << row.label << " " << percent(row.share, 1);
  std::cout << "\nReflection vectors:";
  for (const auto& row : core::reflection_distribution(world->store))
    std::cout << "  " << row.label << " " << percent(row.share, 1);
  std::cout << "\n";
  return 0;
}
